//! Host-side orchestration: index → estimate → batch plan → kernels → result.

use std::collections::VecDeque;

use epsgrid::{GridBuildError, GridIndex, Point};
use sj_telemetry::{Event, Stopwatch, Telemetry, Value};
use warpsim::{
    launch_with, BatchTiming, CoopGroups, CounterFault, DeviceBuffer, DeviceCounter, DeviceFleet,
    FaultPlane, GpuConfig, LaunchError, LaunchOptions, LaunchReport, PipelineReport,
    StreamPipeline, WarpExecution, WarpStatsSummary,
};

use crate::batching::{
    buffer_capacity_for, estimate_prefix, estimate_strided, inclusive_workload_prefix,
    num_batches_scaled, plan_queue, plan_queue_balanced_from_prefix, plan_strided, BatchPlan,
    ResultEstimate,
};
use crate::config::{Balancing, SelfJoinConfig, SortBackend};
use crate::device_prepass::{DevicePrepass, PrePassReport};
use crate::fallback::{cpu_join_queries, CpuFallbackStats};
use crate::fleet::{
    partition_units, partition_units_from_prefix, unit_workloads, FleetOutcome, FleetReport,
    ShardReport, ShardStrategy,
};
use crate::hybrid::{
    choose_cut_measured, forced_cut, gpu_weight_throughput, HybridOutcome, HybridPolicy,
    HybridReport,
};
use crate::kernels::{Assignment, JoinKernelSource, ResolvedPatterns};
use crate::result::ResultSet;
use crate::workload::{expand_cell_order, WorkloadProfile};

/// Errors from configuring or running a self-join.
#[derive(Debug)]
pub enum JoinError {
    /// The requested ε is NaN, infinite, or not strictly positive.
    Epsilon(crate::config::EpsilonError),
    /// The grid index could not be built.
    Grid(GridBuildError),
    /// `k` does not partition the warp size.
    InvalidK(warpsim::coop::CoopError),
    /// A batch kernel overflowed its result buffer — the batch plan failed
    /// its core guarantee (e.g. the sample under-estimated badly).
    Launch(LaunchError),
    /// The device fleet cannot execute this join (no devices, or a device
    /// whose configuration is incompatible with the configured kernels).
    Fleet(String),
    /// The hybrid co-processing differential check failed: a CPU-computed
    /// segment disagrees with the GPU segment it was about to replace. The
    /// two backends must produce the same exact pair set per plan unit;
    /// surfacing the divergence as a typed error (instead of silently
    /// preferring either side) is the co-executor's core test contract.
    Hybrid(String),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Epsilon(e) => write!(f, "{e}"),
            JoinError::Grid(e) => write!(f, "grid index construction failed: {e}"),
            JoinError::InvalidK(e) => write!(f, "invalid thread granularity: {e}"),
            JoinError::Launch(e) => write!(f, "kernel launch failed: {e}"),
            JoinError::Fleet(msg) => write!(f, "fleet configuration error: {msg}"),
            JoinError::Hybrid(msg) => {
                write!(f, "hybrid co-processing differential check failed: {msg}")
            }
        }
    }
}

impl std::error::Error for JoinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JoinError::Epsilon(e) => Some(e),
            JoinError::Grid(e) => Some(e),
            JoinError::InvalidK(e) => Some(e),
            JoinError::Launch(e) => Some(e),
            JoinError::Fleet(_) => None,
            JoinError::Hybrid(_) => None,
        }
    }
}

impl From<GridBuildError> for JoinError {
    fn from(e: GridBuildError) -> Self {
        JoinError::Grid(e)
    }
}

impl From<crate::config::EpsilonError> for JoinError {
    fn from(e: crate::config::EpsilonError) -> Self {
        JoinError::Epsilon(e)
    }
}

/// Per-batch execution record.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The kernel launch outcome.
    pub launch: LaunchReport,
    /// Result pairs produced by this batch.
    pub pairs: usize,
    /// Kernel time in model seconds.
    pub kernel_s: f64,
    /// Device-to-host transfer time in model seconds.
    pub transfer_s: f64,
}

/// What the resilient executor had to do to finish a join under faults.
///
/// Present on [`JoinReport::degradation`] only when at least one fault,
/// retry, split, or stall occurred — a clean run reports `None` and is
/// bit-identical to a run without a fault plane attached.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationReport {
    /// GPU batches that completed and were salvaged.
    pub batches_salvaged: usize,
    /// Query points completed by the exact CPU fallback join.
    pub points_degraded: usize,
    /// Result pairs produced by the CPU fallback.
    pub cpu_pairs: u64,
    /// Model seconds spent in the CPU fallback.
    pub cpu_model_s: f64,
    /// Transient launch failures that were retried.
    pub transient_retries: u32,
    /// Batch splits performed after result-buffer overflows.
    pub overflow_splits: u32,
    /// Queue-counter faults detected, repaired, and re-run.
    pub counter_retries: u32,
    /// Device-to-host transfer stalls absorbed into transfer time.
    pub transfer_stalls: u32,
    /// Host backoff plus wasted kernel time of discarded corrupted
    /// launches, model seconds (outside the stream pipeline).
    pub backoff_s: f64,
    /// Whether the device was lost permanently mid-join.
    pub device_lost: bool,
}

impl DegradationReport {
    /// Whether the exact CPU fallback actually completed query points —
    /// as opposed to a recovery that stayed entirely on-device (retries,
    /// splits, or fleet re-sharding).
    pub fn cpu_fallback_ran(&self) -> bool {
        self.points_degraded > 0
    }
}

/// Aggregate report of a full self-join execution.
#[derive(Debug, Clone)]
pub struct JoinReport {
    /// Result-size estimate that sized the batch plan.
    pub estimate: ResultEstimate,
    /// Number of batches executed.
    pub num_batches: usize,
    /// Per-batch records.
    pub batches: Vec<BatchReport>,
    /// Multi-stream pipeline schedule of the batches.
    pub pipeline: PipelineReport,
    /// Accumulated warp counters across all batches.
    pub totals: WarpExecution,
    /// Total result pairs.
    pub total_pairs: usize,
    /// Fault-recovery accounting; `None` when the run was clean.
    pub degradation: Option<DegradationReport>,
    /// Device sort/scan pre-pass accounting; `None` under the default
    /// [`SortBackend::Host`]. Pre-pass model seconds are reported here and
    /// in telemetry only — [`JoinReport::response_time_s`] stays
    /// backend-invariant so recorded tables never depend on the backend.
    pub prepass: Option<PrePassReport>,
}

impl JoinReport {
    /// Warp execution efficiency across the whole join, in `[0, 1]`.
    pub fn wee(&self) -> f64 {
        self.totals.efficiency()
    }

    /// End-to-end response time in model seconds: kernels + exposed
    /// transfers under the stream pipeline, plus (for faulted runs) retry
    /// backoffs and the CPU fallback time, which happen serially on the
    /// host and cannot overlap the pipeline.
    pub fn response_time_s(&self) -> f64 {
        let recovery_s = self
            .degradation
            .as_ref()
            .map_or(0.0, |d| d.backoff_s + d.cpu_model_s);
        self.pipeline.total_s + recovery_s
    }

    /// Sum of kernel times (no transfers), model seconds.
    pub fn kernel_time_s(&self) -> f64 {
        self.batches.iter().map(|b| b.kernel_s).sum()
    }

    /// Total distance calculations performed.
    pub fn distance_calcs(&self) -> u64 {
        self.totals.lane_ops_by_kind[warpsim::OpKind::Distance.index()]
    }

    /// Per-warp duration summary pooled over all batches.
    pub fn warp_stats(&self) -> Option<WarpStatsSummary> {
        let all: Vec<u64> = self
            .batches
            .iter()
            .flat_map(|b| b.launch.warp_cycles.iter().copied())
            .collect();
        WarpStatsSummary::from_durations(&all)
    }
}

/// A join's outcome: the pair set and the execution report.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// The self-join result.
    pub result: ResultSet,
    /// Timing and efficiency report.
    pub report: JoinReport,
}

/// A configured self-join over a dataset.
///
/// Construction builds the ε-grid index and resolves the access pattern;
/// [`SelfJoin::run`] executes the batched kernels on the simulated GPU.
pub struct SelfJoin<'a, const N: usize> {
    points: &'a [Point<N>],
    config: SelfJoinConfig,
    grid: GridIndex<N>,
    resolved: ResolvedPatterns,
    profile: Option<WorkloadProfile>,
    telemetry: &'a dyn Telemetry,
    fault: Option<&'a FaultPlane>,
    index_build_ns: u64,
    profile_ns: u64,
}

impl<const N: usize> std::fmt::Debug for SelfJoin<'_, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelfJoin")
            .field("points", &self.points.len())
            .field("config", &self.config)
            .field("grid", &self.grid)
            .field("resolved", &self.resolved)
            .field("profile", &self.profile)
            .finish_non_exhaustive()
    }
}

impl<'a, const N: usize> SelfJoin<'a, N> {
    /// Indexes `points` and prepares the kernels described by `config`.
    pub fn new(points: &'a [Point<N>], config: SelfJoinConfig) -> Result<Self, JoinError> {
        crate::config::validate_epsilon(config.epsilon)?;
        CoopGroups::new(config.gpu.warp_size, config.k).map_err(JoinError::InvalidK)?;
        let sw_index = Stopwatch::start();
        let grid = GridIndex::build(points, config.epsilon)?;
        let index_build_ns = sw_index.elapsed_ns();
        Self::with_built_grid(points, config, grid, None, index_build_ns)
    }

    /// Prepares a join over an **already built** index — the serve path's
    /// amortization seam: a maintained [`epsgrid::DynamicGrid`] hands its
    /// index (and optionally its incrementally re-quantified per-cell
    /// workloads) straight to the executor, skipping the per-request index
    /// build and full workload quantification.
    ///
    /// The grid must have been built over exactly `points` at
    /// `config.epsilon` (bit-equal); mismatches are rejected as
    /// [`JoinError::Grid`] rather than silently joining against a stale
    /// index.
    pub fn with_maintained_index(
        points: &'a [Point<N>],
        config: SelfJoinConfig,
        grid: GridIndex<N>,
        per_cell_workload: Option<&[u64]>,
    ) -> Result<Self, JoinError> {
        crate::config::validate_epsilon(config.epsilon)?;
        CoopGroups::new(config.gpu.warp_size, config.k).map_err(JoinError::InvalidK)?;
        if grid.epsilon().to_bits() != config.epsilon.to_bits() {
            return Err(JoinError::Fleet(format!(
                "maintained index was built at eps {} but the join requests eps {}",
                grid.epsilon(),
                config.epsilon
            )));
        }
        if grid.num_points() != points.len() {
            return Err(JoinError::Fleet(format!(
                "maintained index covers {} points but the dataset has {}",
                grid.num_points(),
                points.len()
            )));
        }
        Self::with_built_grid(points, config, grid, per_cell_workload, 0)
    }

    fn with_built_grid(
        points: &'a [Point<N>],
        config: SelfJoinConfig,
        grid: GridIndex<N>,
        per_cell_workload: Option<&[u64]>,
        index_build_ns: u64,
    ) -> Result<Self, JoinError> {
        let resolved = ResolvedPatterns::compute(&grid, config.pattern);
        let sw_profile = Stopwatch::start();
        let profile = match config.balancing {
            Balancing::None => None,
            Balancing::SortByWorkload | Balancing::WorkQueue => {
                // Prefer the maintained per-cell quantification; fall back to
                // computing from scratch if it does not line up with the grid.
                per_cell_workload
                    .and_then(|pc| WorkloadProfile::from_per_cell(&grid, pc))
                    .or_else(|| Some(WorkloadProfile::compute(&grid)))
            }
        };
        let profile_ns = sw_profile.elapsed_ns();
        Ok(Self {
            points,
            config,
            grid,
            resolved,
            profile,
            telemetry: &sj_telemetry::NULL,
            fault: None,
            index_build_ns,
            profile_ns,
        })
    }

    /// Attaches a telemetry sink receiving the executor's phase timers,
    /// estimator-accuracy and overflow-recovery events, plus the per-launch
    /// spans from `warpsim`. Observation only: the sink never changes pair
    /// sets, cycle counts, or model seconds.
    pub fn with_telemetry(mut self, telemetry: &'a dyn Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a fault-injection plane: every kernel launch is admitted
    /// through it, and host-side injections (counter bumps, transfer
    /// stalls) are consumed around launches. Without a plane — or with an
    /// empty schedule — execution is bit-identical to the fault-free path.
    pub fn with_fault_plane(mut self, plane: &'a FaultPlane) -> Self {
        self.fault = Some(plane);
        self
    }

    /// The grid index (for inspection).
    pub fn grid(&self) -> &GridIndex<N> {
        &self.grid
    }

    /// The configuration.
    pub fn config(&self) -> &SelfJoinConfig {
        &self.config
    }

    /// The workload profile, if the balancing strategy required one.
    pub fn profile(&self) -> Option<&WorkloadProfile> {
        self.profile.as_ref()
    }

    /// Mean candidate count per query point (the average refine-step
    /// workload).
    pub fn mean_candidates(&self) -> f64 {
        let total: u128 = (0..self.grid.num_cells())
            .map(|ci| {
                self.grid.window_candidate_count(ci) as u128
                    * self.grid.cell_points(ci).len() as u128
            })
            .sum();
        total as f64 / self.grid.num_points() as f64
    }

    /// Recommends a thread granularity `k` from the dataset's workload.
    ///
    /// The paper evaluates only `k = 1` vs `k = 8` and observes that high
    /// granularity pays off when query points carry large candidate sets
    /// (Expo2D at large ε) but wastes warps when per-point work is small
    /// (Unif6D at any ε). This heuristic encodes that observation: the
    /// recommended `k` grows with the mean candidate count so that each
    /// lane still keeps a few dozen distance calculations.
    pub fn recommended_k(&self) -> u32 {
        let mean = self.mean_candidates();
        if mean < 64.0 {
            1
        } else if mean < 192.0 {
            2
        } else if mean < 512.0 {
            4
        } else {
            8
        }
    }

    /// Builds the batch plan (exposed for tests and benches).
    pub fn plan(&self) -> (ResultEstimate, BatchPlan) {
        let (estimate, plan, _) = self.plan_with(1);
        (estimate, plan)
    }

    /// The pre-pass driver for [`SortBackend::Device`], or `None` under the
    /// host backend.
    fn device_prepass(&self) -> Option<DevicePrepass<'_>> {
        match self.config.sort_backend {
            SortBackend::Host => None,
            SortBackend::Device => Some(DevicePrepass::new(
                &self.config.gpu,
                &self.config.retry,
                self.config.step_mode,
                self.fault,
                self.telemetry,
            )),
        }
    }

    /// Builds the batch plan with the batch count scaled by `multiplier`
    /// **before** the `max_batches` saturation cap is applied, so a scaled
    /// re-plan still respects the device-saturation floor (the per-batch
    /// buffer grows instead of the batch count blowing past the cap).
    ///
    /// Under [`SortBackend::Device`] the SORTBYWL sorts, the WORKQUEUE cell
    /// ordering, and the balanced-queue prefix sum run as warp-kernel
    /// chains; the returned plan is bit-identical to the host backend's (the
    /// primitives match the host oracles exactly, and a faulted pre-pass
    /// degrades to the host path), with the chains' cost accounting in the
    /// third tuple slot.
    fn plan_with(&self, multiplier: usize) -> (ResultEstimate, BatchPlan, Option<PrePassReport>) {
        let c = &self.config;
        let mut prepass = self.device_prepass();
        match c.balancing {
            Balancing::None | Balancing::SortByWorkload => {
                let estimate = estimate_strided(
                    &self.grid,
                    self.points,
                    c.epsilon,
                    c.batching.sample_fraction,
                );
                let nb = num_batches_scaled(&estimate, &c.batching, multiplier);
                let plan = match (&mut prepass, self.profile.as_ref()) {
                    (Some(pp), Some(profile)) => {
                        let mut plan = plan_strided(self.points.len(), nb, None);
                        if let BatchPlan::Strided { batches } = &mut plan {
                            for batch in batches.iter_mut() {
                                if !pp.sort_by_workload(profile.per_point(), batch, "sortbywl") {
                                    profile.sort_by_workload(batch);
                                }
                            }
                        }
                        plan
                    }
                    _ => plan_strided(self.points.len(), nb, self.profile.as_ref()),
                };
                (estimate, plan, prepass.map(|pp| pp.stats))
            }
            Balancing::WorkQueue => {
                // Construction always attaches a profile for WorkQueue, but a
                // missing one (a constructor slip at a request boundary)
                // degrades to an on-the-spot quantification instead of
                // panicking mid-request.
                let computed;
                let profile = match self.profile.as_ref() {
                    Some(p) => p,
                    None => {
                        computed = WorkloadProfile::compute(&self.grid);
                        &computed
                    }
                };
                let order = prepass
                    .as_mut()
                    .and_then(|pp| pp.cell_order(profile.per_cell(), "workqueue_order"))
                    .map(|cells| expand_cell_order(&self.grid, &cells))
                    .unwrap_or_else(|| profile.sorted_dataset(&self.grid));
                let estimate = estimate_prefix(
                    &self.grid,
                    self.points,
                    c.epsilon,
                    c.batching.sample_fraction,
                    &order,
                );
                let nb = num_batches_scaled(&estimate, &c.batching, multiplier);
                let plan = if c.batching.balanced_queue {
                    let values: Vec<u64> = order
                        .iter()
                        .map(|&pid| profile.per_point()[pid as usize])
                        .collect();
                    let prefix = prepass
                        .as_mut()
                        .and_then(|pp| pp.inclusive_prefix(&values, "queue_cut"))
                        .unwrap_or_else(|| inclusive_workload_prefix(&order, profile.per_point()));
                    plan_queue_balanced_from_prefix(order, &prefix, nb)
                } else {
                    plan_queue(order, nb)
                };
                (estimate, plan, prepass.map(|pp| pp.stats))
            }
        }
    }

    /// Executes the join with per-batch fault recovery.
    ///
    /// Completed batches are always salvaged. A batch that overflows its
    /// result buffer is split in two and the halves retried (bounded by
    /// [`RetryPolicy::max_overflow_splits`]); transient launch failures are
    /// re-submitted under geometric backoff; a queue chunk whose device
    /// counter does not land exactly on the chunk boundary is discarded,
    /// the counter repaired, and the chunk re-run statically; and after
    /// persistent device failure the remaining query points complete on the
    /// exact CPU fallback join — the returned pair set is brute-force
    /// identical in every recovered outcome.
    ///
    /// [`RetryPolicy::max_overflow_splits`]: crate::RetryPolicy::max_overflow_splits
    pub fn run(&self) -> Result<JoinOutcome, JoinError> {
        let (estimate, plan, prepass) = self.plan_with_telemetry();
        let c = &self.config;
        let capacity = self.capacity_for(&estimate, &plan);
        let counter = DeviceCounter::new();
        let queue_limit = match &plan {
            BatchPlan::Queue { order, .. } => order.len() as u64,
            _ => 0,
        };
        let items: Vec<WorkItem> = (0..plan.num_batches()).map(WorkItem::planned).collect();
        let ctx = ShardCtx {
            device: None,
            gpu: &c.gpu,
            fault: self.fault,
            counter: &counter,
            capacity,
            queue_limit,
            defer: false,
        };
        let ShardExecution {
            result,
            batch_reports,
            totals,
            gather_ns,
            recovery,
            ..
        } = self.execute_units(&plan, &items, &ctx)?;
        let timings: Vec<BatchTiming> = batch_reports
            .iter()
            .map(|b| BatchTiming {
                kernel_s: b.kernel_s,
                transfer_s: b.transfer_s,
            })
            .collect();
        let pipeline = StreamPipeline::new(c.batching.num_streams).schedule(&timings);
        let total_pairs = result.len();
        let degradation = recovery.into_report(batch_reports.len());
        let recovery_s = degradation
            .as_ref()
            .map_or(0.0, |d| d.backoff_s + d.cpu_model_s);
        if self.telemetry.is_enabled() {
            self.record_tail_events(
                &estimate,
                gather_ns,
                batch_reports.len(),
                total_pairs,
                pipeline.total_s + recovery_s,
                &totals,
                degradation.as_ref().is_some_and(|d| d.points_degraded > 0),
            );
        }
        Ok(JoinOutcome {
            result,
            report: JoinReport {
                estimate,
                num_batches: batch_reports.len(),
                batches: batch_reports,
                pipeline,
                totals,
                total_pairs,
                degradation,
                prepass,
            },
        })
    }

    /// Executes the join sharded across a [`DeviceFleet`].
    ///
    /// The join is planned **once**, exactly as [`SelfJoin::run`] plans it;
    /// the plan's units are then cut into one contiguous region per device
    /// by `strategy` (see [`crate::fleet`]) and each region executes on its
    /// own device — own queue head, own result buffer, own stream pipeline,
    /// own fault plane. Per-batch launches are parameterized identically to
    /// the single-device run, so on a clean homogeneous fleet the merged
    /// pair set and the canonical [`FleetOutcome::report`] are bit-identical
    /// to [`SelfJoin::run`] for **any** device count; the fleet adds the
    /// per-shard breakdown and the makespan (maximum shard response time).
    ///
    /// Faults are per-device (attach schedules via
    /// [`DeviceFleet::with_fault_schedule`]): a device lost mid-shard
    /// degrades only its own region to the exact CPU fallback, and the
    /// merged join stays exact. One difference from the single-device
    /// executor under faults: the overflow-split and retry budgets of
    /// [`crate::RetryPolicy`] apply **per shard**, since each device
    /// recovers independently.
    pub fn run_on_fleet(
        &self,
        fleet: &DeviceFleet,
        strategy: ShardStrategy,
    ) -> Result<FleetOutcome, JoinError> {
        let c = &self.config;
        if fleet.is_empty() {
            return Err(JoinError::Fleet("fleet has no devices".into()));
        }
        for dev in fleet.iter() {
            if dev.gpu().warp_size != c.gpu.warp_size {
                return Err(JoinError::Fleet(format!(
                    "device {} warp size {} differs from the configured {} \
                     (a heterogeneous warp width would change the coop-group \
                     layout per shard)",
                    dev.id(),
                    dev.gpu().warp_size,
                    c.gpu.warp_size
                )));
            }
        }
        let telemetry_on = self.telemetry.is_enabled();
        let (estimate, plan, prepass) = self.plan_with_telemetry();
        let capacity = self.capacity_for(&estimate, &plan);
        // Quantified per-unit workload for the cut: reuse the balancing
        // profile when one exists; otherwise profile here. Host-side only —
        // it cannot change kernel behaviour or model times.
        let fallback_profile;
        let per_point: &[u64] = match self.profile.as_ref() {
            Some(profile) => profile.per_point(),
            None => {
                fallback_profile = WorkloadProfile::compute(&self.grid);
                fallback_profile.per_point()
            }
        };
        let weights = unit_workloads(&plan, per_point);
        let regions = self.partition_for_fleet(&weights, fleet.len(), strategy);
        let queue_limit = match &plan {
            BatchPlan::Queue { order, .. } => order.len() as u64,
            _ => 0,
        };
        let defer = c.recovery.reshard_enabled();
        // Resolves a planned unit back to its query set (CPU last resort).
        let planned_queries = |u: usize| -> Vec<u32> {
            match &plan {
                BatchPlan::Strided { batches } => batches[u].clone(),
                BatchPlan::Queue { order, chunks } => order[chunks[u].clone()].to_vec(),
            }
        };
        // Quantified workload of a re-shardable work item: planned units
        // reuse the cut weights, carried-over query sets re-sum per point.
        let item_weight = |it: &WorkItem| -> u64 {
            match &it.queries {
                Some(qs) => qs.iter().map(|&q| per_point[q as usize]).sum(),
                None => weights[it.unit],
            }
        };

        let mut states: Vec<DeviceState> = (0..fleet.len()).map(|_| DeviceState::new()).collect();
        let mut rec = crate::fleet::FleetRecoveryReport::default();
        let mut cpu_done: Vec<DoneItem> = Vec::new();
        let mut gather_ns: u64 = 0;
        let mut seq = 0usize;
        let mut round: u32 = 0;
        let mut saved_error: Option<LaunchError> = None;

        // Round 0: the initial per-region assignment.
        let mut region_queries: Vec<usize> = Vec::with_capacity(fleet.len());
        let mut region_workloads: Vec<u64> = Vec::with_capacity(fleet.len());
        let mut assignment: Vec<(usize, Vec<WorkItem>)> = Vec::with_capacity(fleet.len());
        for (d, region) in regions.iter().enumerate() {
            let queries: usize = match &plan {
                BatchPlan::Strided { batches } => region.clone().map(|u| batches[u].len()).sum(),
                BatchPlan::Queue { chunks, .. } => region.clone().map(|u| chunks[u].len()).sum(),
            };
            let workload: u64 = weights[region.clone()].iter().sum();
            if telemetry_on {
                self.telemetry.record(
                    Event::new("executor.fleet", "shard_plan")
                        .u64("device", d as u64)
                        .u64("first_unit", region.start as u64)
                        .u64("units", region.len() as u64)
                        .u64("queries", queries as u64)
                        .u64("workload", workload)
                        .str("strategy", strategy.label()),
                );
            }
            region_queries.push(queries);
            region_workloads.push(workload);
            assignment.push((d, region.clone().map(WorkItem::planned).collect()));
        }

        // The recovery loop: execute the current assignment, re-shard
        // whatever interrupted shards left behind onto survivors (bounded
        // by the round budget), then give stragglers the same treatment.
        loop {
            let mut leftovers: Vec<WorkItem> = Vec::new();
            // Execute this round's shard assignments concurrently on the
            // host pool: every device owns its queue counter and fault
            // plane, so per-device execution is independent. Each device's
            // event stream is captured into its own buffer and spliced in
            // device (assignment) order below; all result merging stays
            // serial in that same order, so the outcome is bit-identical
            // to executing the devices one after another.
            let round_assignment: Vec<(usize, Vec<WorkItem>)> = std::mem::take(&mut assignment)
                .into_iter()
                .filter(|(_, items)| !items.is_empty())
                .collect();
            type DeviceRun = (
                usize,
                Vec<WorkItem>,
                EventBuffer,
                Result<ShardExecution, JoinError>,
            );
            let execs: Vec<DeviceRun> =
                crate::pool::par_map(c.resolved_host_jobs(), round_assignment, |(d, items)| {
                    let device = fleet.device(d);
                    let ctx = ShardCtx {
                        device: Some(d as u64),
                        gpu: device.gpu(),
                        fault: device.fault_plane(),
                        counter: device.counter(),
                        capacity,
                        queue_limit,
                        defer,
                    };
                    let buffer = EventBuffer::new(telemetry_on);
                    let res = self.execute_units_with(&plan, &items, &ctx, &buffer);
                    (d, items, buffer, res)
                });
            for (d, items, buffer, res) in execs {
                if telemetry_on {
                    for event in buffer.into_events() {
                        self.telemetry.record(event);
                    }
                }
                // A typed error surfaces after the failing device's own
                // partial events, exactly as in the serial walk; later
                // devices' buffers are dropped unseen.
                let exec = res?;
                gather_ns += exec.gather_ns;
                let state = &mut states[d];
                state.recovery.merge(&exec.recovery);
                let interrupted = exec.interruption.is_some();
                // Re-key executed batches by submitting item: items complete
                // strictly in order, so each item's batches and pairs are
                // contiguous runs of the shard output.
                let all_pairs = exec.result.pairs();
                let mut pair_off = 0usize;
                let mut batch_idx = 0usize;
                while batch_idx < exec.batch_reports.len() {
                    let item_idx = exec.batch_items[batch_idx];
                    let mut end = batch_idx;
                    let mut item_pairs = 0usize;
                    while end < exec.batch_items.len() && exec.batch_items[end] == item_idx {
                        item_pairs += exec.batch_reports[end].pairs;
                        end += 1;
                    }
                    state.done.push(DoneItem {
                        key: items[item_idx].unit,
                        seq,
                        // An interrupted shard's completed fragments may be
                        // partial (a split half whose sibling never ran);
                        // they are checkpointed output, never respawned.
                        work: (!interrupted).then(|| items[item_idx].clone()),
                        pairs: all_pairs[pair_off..pair_off + item_pairs].to_vec(),
                        batches: exec.batch_reports[batch_idx..end].to_vec(),
                    });
                    seq += 1;
                    pair_off += item_pairs;
                    batch_idx = end;
                }
                if exec.recovery.cpu.is_some() {
                    // Degrade mode: the shard finished its own remainder on
                    // the CPU; its pairs sort right after the failing
                    // unit's salvaged fragments.
                    let key = exec
                        .cpu_tail_key
                        .unwrap_or_else(|| items.last().map_or(0, |it| it.unit));
                    state.done.push(DoneItem {
                        key,
                        seq,
                        work: None,
                        pairs: all_pairs[pair_off..].to_vec(),
                        batches: Vec::new(),
                    });
                    seq += 1;
                }
                if let Some(intr) = exec.interruption {
                    state.usable = false;
                    state.reassigned_out += intr.remnants.len();
                    rec.devices_lost += 1;
                    rec.health.push(crate::fleet::HealthEvent {
                        device: d as u64,
                        round,
                        state: if intr.device_lost {
                            crate::fleet::DeviceHealth::Lost
                        } else {
                            crate::fleet::DeviceHealth::TransientExhausted
                        },
                        units: intr.remnants.len(),
                    });
                    if telemetry_on {
                        self.telemetry.record(
                            Event::new("fleet", "device_lost")
                                .u64("device", d as u64)
                                .u64("round", round as u64)
                                .u64("remnant_units", intr.remnants.len() as u64)
                                .bool("device_lost", intr.device_lost),
                        );
                    }
                    saved_error = Some(intr.error);
                    leftovers.extend(intr.remnants);
                }
            }

            if !leftovers.is_empty() {
                let survivors: Vec<usize> = states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.usable)
                    .map(|(d, _)| d)
                    .collect();
                if survivors.is_empty() || rec.reshard_rounds >= c.recovery.max_reshard_rounds {
                    if !c.recovery.cpu_last_resort {
                        // Unexecuted work implies an interruption was
                        // recorded; if that bookkeeping ever slips, surface a
                        // typed fleet error instead of panicking mid-join.
                        return Err(match saved_error.take() {
                            Some(error) => JoinError::Launch(error),
                            None => JoinError::Fleet(
                                "work left unexecuted without a recorded interruption".into(),
                            ),
                        });
                    }
                    // Exact CPU last resort: one pair segment per remnant
                    // item, so the canonical merge can interleave
                    // CPU-completed units with GPU-completed units in plan
                    // order.
                    let owned: Vec<Vec<u32>> = leftovers
                        .iter()
                        .map(|it| match &it.queries {
                            Some(q) => q.clone(),
                            None => planned_queries(it.unit),
                        })
                        .collect();
                    let sets: Vec<&[u32]> = owned.iter().map(|v| v.as_slice()).collect();
                    let mut per_set: Vec<Vec<(u32, u32)>> = Vec::new();
                    let sw_cpu = Stopwatch::start();
                    let stats = crate::fallback::cpu_join_query_sets(
                        &self.grid,
                        self.points,
                        &self.resolved,
                        c.epsilon,
                        &sets,
                        &mut per_set,
                    );
                    let cpu_model_s = c.cpu_fallback.model_seconds(&stats, N as u32, &c.gpu.cost);
                    rec.cpu_last_resort_points = stats.queries;
                    rec.cpu_last_resort_pairs = stats.pairs;
                    rec.cpu_last_resort_model_s = cpu_model_s;
                    if telemetry_on {
                        self.telemetry.record(
                            Event::new("fleet", "cpu_last_resort")
                                .u64("points", stats.queries as u64)
                                .u64("pairs", stats.pairs)
                                .u64("distance_calcs", stats.distance_calcs)
                                .f64("cpu_model_s", cpu_model_s)
                                .str(
                                    "reason",
                                    if survivors.is_empty() {
                                        "no_survivors"
                                    } else {
                                        "budget_exhausted"
                                    },
                                )
                                .u64("host_ns", sw_cpu.elapsed_ns()),
                        );
                    }
                    for (it, pairs) in leftovers.iter().zip(per_set) {
                        cpu_done.push(DoneItem {
                            key: it.unit,
                            seq,
                            work: None,
                            pairs,
                            batches: Vec::new(),
                        });
                        seq += 1;
                    }
                    break;
                }
                round += 1;
                rec.reshard_rounds += 1;
                rec.reassigned_units += leftovers.len();
                // The same workload-aware cut that built the fleet's
                // regions, applied to the shrunken fleet over the
                // unexecuted remainder. Survivors take cuts in ascending
                // order of accumulated response time, so the least-loaded
                // device absorbs the (possibly heavier) first slice.
                // Assignment order still follows cut order, which keeps
                // same-unit fragments in plan order for the merge.
                let mut survivors = survivors;
                survivors.sort_by(|&a, &b| {
                    states[a]
                        .pipeline_and_response(c.batching.num_streams)
                        .1
                        .total_cmp(&states[b].pipeline_and_response(c.batching.num_streams).1)
                        .then(a.cmp(&b))
                });
                let item_weights: Vec<u64> = leftovers.iter().map(item_weight).collect();
                let cuts =
                    partition_units(&item_weights, survivors.len(), ShardStrategy::WorkloadAware);
                if telemetry_on {
                    self.telemetry.record(
                        Event::new("fleet", "reshard")
                            .u64("round", round as u64)
                            .u64("units", leftovers.len() as u64)
                            .u64("survivors", survivors.len() as u64),
                    );
                }
                for (slot, cut) in cuts.iter().enumerate() {
                    if cut.is_empty() {
                        continue;
                    }
                    let d = survivors[slot];
                    let moved = leftovers[cut.clone()].to_vec();
                    states[d].reassigned_in += moved.len();
                    rec.health.push(crate::fleet::HealthEvent {
                        device: d as u64,
                        round,
                        state: crate::fleet::DeviceHealth::Reassigned,
                        units: moved.len(),
                    });
                    assignment.push((d, moved));
                }
                continue;
            }

            // Straggler mitigation: if the slowest shard's response time
            // (pipeline plus accrued backoff) exceeds the configured
            // multiple of the fleet median, cancel its not-yet-started tail
            // items (serial kernel timeline) and re-home them on
            // under-loaded survivors — a cancel-and-reassign variant of
            // speculative re-execution, drawing from the same round budget.
            if defer
                && c.recovery.straggler_threshold > 0.0
                && rec.reshard_rounds < c.recovery.max_reshard_rounds
            {
                let responses: Vec<f64> = states
                    .iter()
                    .map(|s| s.pipeline_and_response(c.batching.num_streams).1)
                    .collect();
                let active: Vec<usize> =
                    (0..states.len()).filter(|&d| responses[d] > 0.0).collect();
                if active.len() >= 2 {
                    let mut sorted: Vec<f64> = active.iter().map(|&d| responses[d]).collect();
                    sorted.sort_by(f64::total_cmp);
                    let mid = sorted.len() / 2;
                    let median = if sorted.len() % 2 == 1 {
                        sorted[mid]
                    } else {
                        0.5 * (sorted[mid - 1] + sorted[mid])
                    };
                    let mut worst = active[0];
                    for &d in &active[1..] {
                        if responses[d] > responses[worst] {
                            worst = d;
                        }
                    }
                    let cutoff = c.recovery.straggler_threshold * median;
                    if median > 0.0 && states[worst].usable && responses[worst] > cutoff {
                        let receivers: Vec<usize> = (0..states.len())
                            .filter(|&d| d != worst && states[d].usable && responses[d] < median)
                            .collect();
                        if !receivers.is_empty() {
                            let stripped: Vec<WorkItem> = {
                                let dev = &mut states[worst];
                                let mut starts: Vec<f64> = Vec::with_capacity(dev.done.len());
                                let mut t = 0.0f64;
                                for item in &dev.done {
                                    starts.push(t);
                                    t += item.batches.iter().map(|b| b.kernel_s).sum::<f64>();
                                }
                                let mut cut_idx = dev.done.len();
                                while cut_idx > 1
                                    && dev.done[cut_idx - 1].work.is_some()
                                    && starts[cut_idx - 1] >= cutoff
                                {
                                    cut_idx -= 1;
                                }
                                // Unreachable-by-construction: the cut loop
                                // above only steps past items whose `work`
                                // is `Some`, so everything drained here is
                                // respawnable.
                                dev.done
                                    .drain(cut_idx..)
                                    .map(|di| di.work.expect("only respawnable items are stripped"))
                                    .collect()
                            };
                            if !stripped.is_empty() {
                                round += 1;
                                rec.reshard_rounds += 1;
                                rec.straggler_rebalances += 1;
                                rec.reassigned_units += stripped.len();
                                states[worst].reassigned_out += stripped.len();
                                rec.health.push(crate::fleet::HealthEvent {
                                    device: worst as u64,
                                    round,
                                    state: crate::fleet::DeviceHealth::Straggler,
                                    units: stripped.len(),
                                });
                                if telemetry_on {
                                    self.telemetry.record(
                                        Event::new("fleet", "straggler")
                                            .u64("device", worst as u64)
                                            .u64("round", round as u64)
                                            .f64("response_model_s", responses[worst])
                                            .f64("median_model_s", median)
                                            .f64("threshold", c.recovery.straggler_threshold)
                                            .u64("units_moved", stripped.len() as u64),
                                    );
                                }
                                let item_weights: Vec<u64> =
                                    stripped.iter().map(item_weight).collect();
                                let cuts = partition_units(
                                    &item_weights,
                                    receivers.len(),
                                    ShardStrategy::WorkloadAware,
                                );
                                for (slot, cut) in cuts.iter().enumerate() {
                                    if cut.is_empty() {
                                        continue;
                                    }
                                    let d = receivers[slot];
                                    let moved = stripped[cut.clone()].to_vec();
                                    states[d].reassigned_in += moved.len();
                                    rec.health.push(crate::fleet::HealthEvent {
                                        device: d as u64,
                                        round,
                                        state: crate::fleet::DeviceHealth::Reassigned,
                                        units: moved.len(),
                                    });
                                    assignment.push((d, moved));
                                }
                                continue;
                            }
                        }
                    }
                }
            }
            break;
        }

        // Final per-device accounting.
        let mut shards: Vec<ShardReport> = Vec::with_capacity(fleet.len());
        let mut makespan_s = 0.0f64;
        let mut recovery = RecoveryCounters::default();
        for (d, state) in states.iter().enumerate() {
            let (pipeline, response_time_s) = state.pipeline_and_response(c.batching.num_streams);
            makespan_s = makespan_s.max(response_time_s);
            let batches: usize = state.done.iter().map(|di| di.batches.len()).sum();
            let pairs: usize = state.done.iter().map(|di| di.pairs.len()).sum();
            let degradation = state.recovery.clone().into_report(batches);
            if telemetry_on {
                self.telemetry.record(
                    Event::new("executor.fleet", "shard_done")
                        .u64("device", d as u64)
                        .u64("batches", batches as u64)
                        .u64("pairs", pairs as u64)
                        .f64("pipeline_model_s", pipeline.total_s)
                        .f64("response_model_s", response_time_s)
                        .bool(
                            "degraded",
                            degradation
                                .as_ref()
                                .is_some_and(|dg| dg.points_degraded > 0),
                        ),
                );
            }
            shards.push(ShardReport {
                device: d as u64,
                units: regions[d].clone(),
                queries: region_queries[d],
                workload: region_workloads[d],
                batches,
                pairs,
                pipeline,
                degradation,
                response_time_s,
                reassigned_in: state.reassigned_in,
                reassigned_out: state.reassigned_out,
            });
            recovery.merge(&state.recovery);
        }
        // The CPU last resort runs serially on the host after the devices.
        makespan_s += rec.cpu_last_resort_model_s;
        if rec.cpu_last_resort_points > 0 {
            let acc = recovery.cpu.get_or_insert((0, 0, 0.0));
            acc.0 += rec.cpu_last_resort_points;
            acc.1 += rec.cpu_last_resort_pairs;
            acc.2 += rec.cpu_last_resort_model_s;
        }

        // Canonical merge in original plan-unit order. `seq` breaks ties
        // within a unit: completed fragments keep their execution order, so
        // a split half salvaged from a dying device still lands before its
        // re-homed sibling — exactly the single-device production order.
        let mut entries: Vec<DoneItem> = states
            .into_iter()
            .flat_map(|s| s.done)
            .chain(cpu_done)
            .collect();
        entries.sort_by(|a, b| a.key.cmp(&b.key).then(a.seq.cmp(&b.seq)));
        let mut result = ResultSet::default();
        let mut batch_reports: Vec<BatchReport> = Vec::with_capacity(plan.num_batches());
        let mut totals = WarpExecution {
            warp_size: c.gpu.warp_size,
            ..WarpExecution::default()
        };
        for entry in entries {
            result.extend(&entry.pairs);
            for batch in entry.batches {
                totals.accumulate(&batch.launch.totals);
                batch_reports.push(batch);
            }
        }
        let timings: Vec<BatchTiming> = batch_reports
            .iter()
            .map(|b| BatchTiming {
                kernel_s: b.kernel_s,
                transfer_s: b.transfer_s,
            })
            .collect();
        let pipeline = StreamPipeline::new(c.batching.num_streams).schedule(&timings);
        let total_pairs = result.len();
        let degradation = recovery.into_report(batch_reports.len());
        let recovery_s = degradation
            .as_ref()
            .map_or(0.0, |dg| dg.backoff_s + dg.cpu_model_s);
        if telemetry_on {
            self.record_tail_events(
                &estimate,
                gather_ns,
                batch_reports.len(),
                total_pairs,
                pipeline.total_s + recovery_s,
                &totals,
                degradation
                    .as_ref()
                    .is_some_and(|dg| dg.points_degraded > 0),
            );
            self.telemetry.record(
                Event::new("executor.fleet", "fleet_summary")
                    .u64("devices", fleet.len() as u64)
                    .str("strategy", strategy.label())
                    .f64("makespan_model_s", makespan_s)
                    .f64("canonical_response_model_s", pipeline.total_s + recovery_s)
                    .u64("devices_lost", fleet.lost_devices() as u64),
            );
        }
        Ok(FleetOutcome {
            result,
            report: JoinReport {
                estimate,
                num_batches: batch_reports.len(),
                batches: batch_reports,
                pipeline,
                totals,
                total_pairs,
                degradation,
                prepass,
            },
            fleet: FleetReport {
                strategy,
                shards,
                makespan_s,
                recovery: rec,
            },
        })
    }

    /// Executes the join as a hybrid CPU/GPU co-process.
    ///
    /// The join is planned **once**, exactly as [`SelfJoin::run`] plans it;
    /// [`crate::hybrid::choose_cut`] (or the policy's forced fraction) then
    /// cuts the planned unit list: units `[0, cut)` are the GPU's share,
    /// units `[cut, n)` the CPU pool's. Execution is **differential**: the
    /// GPU executes the full plan through the shared `execute_units` path —
    /// which keeps the returned canonical [`JoinReport`] and the executor
    /// telemetry bit-identical to [`SelfJoin::run`] — while the CPU pool
    /// independently recomputes its share with the exact [`crate::fallback`]
    /// join on [`crate::hybrid::par_map`] workers. Each CPU segment is
    /// checked pair-for-pair against the GPU segment it replaces before the
    /// plan-order merge; a divergence returns [`JoinError::Hybrid`] instead
    /// of a silently different result. The split decision and both backends'
    /// cost accounting (the overlapped makespan in model seconds) land on
    /// [`HybridOutcome::hybrid`] and in `hybrid.*` telemetry only, so
    /// result tables stay backend-invariant.
    ///
    /// Under [`crate::RecoveryPolicy::reshard`] the CPU backend is also the
    /// failover peer: a device lost mid-run hands its unexecuted remainder
    /// to the pool (not to last-resort degradation), the remnants are
    /// recomputed exactly, and the merged join stays exact under any fault
    /// schedule. Under [`crate::RecoveryPolicy::degrade`] the in-shard CPU
    /// fallback of [`SelfJoin::run`] handles the remainder unchanged.
    pub fn run_hybrid(&self, policy: &HybridPolicy) -> Result<HybridOutcome, JoinError> {
        let telemetry_on = self.telemetry.is_enabled();
        let (estimate, plan, prepass) = self.plan_with_telemetry();
        let c = &self.config;
        let capacity = self.capacity_for(&estimate, &plan);
        let n = plan.num_batches();

        // Quantified per-unit workload for the cut (host-side only, same
        // reuse rule as the fleet path).
        let fallback_profile;
        let per_point: &[u64] = match self.profile.as_ref() {
            Some(profile) => profile.per_point(),
            None => {
                fallback_profile = WorkloadProfile::compute(&self.grid);
                fallback_profile.per_point()
            }
        };
        let weights = unit_workloads(&plan, per_point);
        let gpu_rate = gpu_weight_throughput(&c.gpu, N as u32);
        let cpu_rate = policy.cpu.weight_throughput(N as u32, &c.gpu.cost);
        let dispatch_s = policy.cpu.dispatch_overhead_s;
        // A forced fraction fixes the cut up front (with throughput-model
        // predictions); the auto chooser decides after the shadow execution,
        // from the measured per-unit model costs of both backends.
        let forced_choice = policy
            .forced_cpu_fraction
            .map(|fraction| forced_cut(&weights, fraction, gpu_rate, cpu_rate, dispatch_s));

        // The GPU shadow-executes the full plan exactly as `run` does: same
        // context, same counter, same fault plane. This is what keeps the
        // canonical report and event stream split-invariant — and it is the
        // oracle the CPU segments are differentially checked against.
        let counter = DeviceCounter::new();
        let queue_limit = match &plan {
            BatchPlan::Queue { order, .. } => order.len() as u64,
            _ => 0,
        };
        let items: Vec<WorkItem> = (0..n).map(WorkItem::planned).collect();
        let ctx = ShardCtx {
            device: None,
            gpu: &c.gpu,
            fault: self.fault,
            counter: &counter,
            capacity,
            queue_limit,
            defer: c.recovery.reshard_enabled(),
        };
        let exec = self.execute_units(&plan, &items, &ctx)?;

        // Re-key the shard output by plan unit (the fleet merge idiom):
        // items complete strictly in order, so each item's batches and
        // pairs are contiguous runs of the shard output.
        let all_pairs = exec.result.pairs();
        let mut done: Vec<DoneItem> = Vec::new();
        let mut seq = 0usize;
        let mut pair_off = 0usize;
        let mut batch_idx = 0usize;
        while batch_idx < exec.batch_reports.len() {
            let item_idx = exec.batch_items[batch_idx];
            let mut end = batch_idx;
            let mut item_pairs = 0usize;
            while end < exec.batch_items.len() && exec.batch_items[end] == item_idx {
                item_pairs += exec.batch_reports[end].pairs;
                end += 1;
            }
            done.push(DoneItem {
                key: items[item_idx].unit,
                seq,
                work: None,
                pairs: all_pairs[pair_off..pair_off + item_pairs].to_vec(),
                batches: exec.batch_reports[batch_idx..end].to_vec(),
            });
            seq += 1;
            pair_off += item_pairs;
            batch_idx = end;
        }
        if exec.recovery.cpu.is_some() {
            // Degrade recovery: the in-shard CPU fallback finished the
            // remainder; its blob sorts after the failing unit's salvaged
            // fragments, exactly as on the fleet path.
            let key = exec
                .cpu_tail_key
                .unwrap_or_else(|| items.last().map_or(0, |it| it.unit));
            done.push(DoneItem {
                key,
                seq,
                work: None,
                pairs: all_pairs[pair_off..].to_vec(),
                batches: Vec::new(),
            });
            seq += 1;
        }

        // The first plan unit with no complete GPU result: everything at or
        // past it is covered by the degrade blob or by the reshard spill,
        // so planned CPU replacement (and the differential check) applies
        // only to the fully completed units in `[cut, f_complete)`.
        let f_complete = if let Some(intr) = exec.interruption.as_ref() {
            intr.remnants.first().map_or(n, |it| it.unit)
        } else if exec.recovery.cpu.is_some() {
            exec.cpu_tail_key.unwrap_or(n)
        } else {
            n
        };

        // Resolves a planned unit back to its query set.
        let planned_queries = |u: usize| -> Vec<u32> {
            match &plan {
                BatchPlan::Strided { batches } => batches[u].clone(),
                BatchPlan::Queue { order, chunks } => order[chunks[u].clone()].to_vec(),
            }
        };

        // Measured inputs to the auto cut: the executed batch timings
        // grouped by plan unit, and the GPU side's fixed recovery charge.
        let mut unit_timings: Vec<Vec<BatchTiming>> = vec![Vec::new(); n];
        for (b, &item_idx) in exec.batch_reports.iter().zip(&exec.batch_items) {
            unit_timings[items[item_idx].unit].push(BatchTiming {
                kernel_s: b.kernel_s,
                transfer_s: b.transfer_s,
            });
        }
        let gpu_fixed_s = exec.recovery.backoff_s() + exec.recovery.cpu.map_or(0.0, |(_, _, s)| s);

        // The CPU pool recomputes the candidate share: under a forced cut
        // just the forced suffix, under the auto chooser every completed
        // unit — which is both the full differential harness and the exact
        // per-unit CPU costs the measured cut decision needs. Only plain
        // data crosses the pool boundary, and results come back in task
        // order, so everything downstream is invariant under `jobs`.
        let task_lo = forced_choice.as_ref().map_or(0, |ch| ch.cut);
        let planned_tasks: Vec<(usize, Vec<u32>)> = (task_lo..f_complete)
            .filter_map(|u| {
                let queries = planned_queries(u);
                (!queries.is_empty()).then_some((u, queries))
            })
            .collect();
        let grid = &self.grid;
        let points = self.points;
        let resolved = &self.resolved;
        let epsilon = c.epsilon;
        let sw_cpu = Stopwatch::start();
        let planned_results =
            crate::hybrid::par_map(policy.jobs.max(1), planned_tasks, move |(key, queries)| {
                let mut pairs: Vec<(u32, u32)> = Vec::new();
                let stats = cpu_join_queries(grid, points, resolved, epsilon, &queries, &mut pairs);
                (key, pairs, stats)
            });
        let choice = match forced_choice {
            Some(ch) => ch,
            None => {
                let mut cpu_unit_s = vec![0.0f64; n];
                for (u, _, stats) in &planned_results {
                    cpu_unit_s[*u] = policy.cpu.model_seconds(stats, N as u32, &c.gpu.cost, 1);
                }
                choose_cut_measured(
                    &unit_timings,
                    gpu_fixed_s,
                    &cpu_unit_s,
                    c.batching.num_streams,
                )
            }
        };
        let cut = choice.cut;
        if telemetry_on {
            self.telemetry.record(
                Event::new("hybrid", "cut")
                    .u64("units", n as u64)
                    .u64("cut", cut as u64)
                    .u64("gpu_units", cut as u64)
                    .u64("cpu_units", (n - cut) as u64)
                    .bool("forced", choice.forced)
                    .f64("predicted_gpu_model_s", choice.predicted_gpu_s)
                    .f64("predicted_cpu_model_s", choice.predicted_cpu_s),
            );
        }

        // Under reshard recovery, a lost device's unexecuted remnants spill
        // onto the CPU backend — the CPU is a peer device, not a last
        // resort, so there is no degradation accounting for them.
        let mut spilled_units = 0usize;
        let mut spill_tasks: Vec<(usize, Vec<u32>)> = Vec::new();
        if let Some(intr) = exec.interruption {
            let mut spilled_queries = 0usize;
            for it in intr.remnants {
                let queries = match it.queries {
                    Some(q) => q,
                    None => planned_queries(it.unit),
                };
                if queries.is_empty() {
                    continue;
                }
                spilled_units += 1;
                spilled_queries += queries.len();
                spill_tasks.push((it.unit, queries));
            }
            if telemetry_on {
                self.telemetry.record(
                    Event::new("hybrid", "spill")
                        .u64("units", spilled_units as u64)
                        .u64("queries", spilled_queries as u64)
                        .bool("device_lost", intr.device_lost),
                );
            }
        }
        let spill_results =
            crate::hybrid::par_map(policy.jobs.max(1), spill_tasks, move |(key, queries)| {
                let mut pairs: Vec<(u32, u32)> = Vec::new();
                let stats = cpu_join_queries(grid, points, resolved, epsilon, &queries, &mut pairs);
                (key, pairs, stats)
            });
        let cpu_host_ns = sw_cpu.elapsed_ns();

        // Drop the GPU's copies of the replaced units `[cut, f_complete)`
        // from the merge, and collect every checked unit's GPU segment —
        // the oracle for the differential check.
        let mut gpu_segments: std::collections::BTreeMap<usize, Vec<(u32, u32)>> =
            std::collections::BTreeMap::new();
        let mut kept: Vec<DoneItem> = Vec::with_capacity(done.len());
        for di in done {
            if di.key >= task_lo && di.key < f_complete {
                gpu_segments
                    .entry(di.key)
                    .or_default()
                    .extend(di.pairs.iter().copied());
            }
            if di.key >= cut && di.key < f_complete {
                continue;
            }
            kept.push(di);
        }
        // Pairs the GPU side keeps in the merge (its prefix share, plus the
        // degrade blob when the in-shard fallback ran).
        let gpu_pairs_total: usize = kept.iter().map(|di| di.pairs.len()).sum();

        // Differential check: every recomputed segment must match the GPU
        // segment for its unit pair-for-pair. Segments at or past the cut
        // then replace the GPU's in the merge; checked prefix segments
        // (auto mode) are discarded; spills are admitted unchecked — the
        // GPU never completed them, the brute-force suites cover those.
        let mut cpu_stats = CpuFallbackStats::default();
        let mut cpu_pairs_total = 0usize;
        let mut cpu_items = 0usize;
        for (key, pairs, stats) in planned_results {
            let mut gpu = gpu_segments.remove(&key).unwrap_or_default();
            let mut cpu = pairs.clone();
            gpu.sort_unstable();
            cpu.sort_unstable();
            if gpu != cpu {
                return Err(JoinError::Hybrid(format!(
                    "unit {key}: the CPU segment ({} pairs) disagrees with \
                     the GPU segment ({} pairs)",
                    cpu.len(),
                    gpu.len()
                )));
            }
            if key < cut {
                continue;
            }
            cpu_stats.queries += stats.queries;
            cpu_stats.distance_calcs += stats.distance_calcs;
            cpu_stats.pairs += stats.pairs;
            cpu_pairs_total += pairs.len();
            cpu_items += 1;
            kept.push(DoneItem {
                key,
                seq,
                work: None,
                pairs,
                batches: Vec::new(),
            });
            seq += 1;
        }
        if let Some((&key, gpu)) = gpu_segments.range(cut..).find(|(_, gpu)| !gpu.is_empty()) {
            return Err(JoinError::Hybrid(format!(
                "unit {key}: the GPU produced {} pairs but the CPU share had \
                 no queries for it",
                gpu.len()
            )));
        }
        for (key, pairs, stats) in spill_results {
            cpu_stats.queries += stats.queries;
            cpu_stats.distance_calcs += stats.distance_calcs;
            cpu_stats.pairs += stats.pairs;
            cpu_pairs_total += pairs.len();
            cpu_items += 1;
            kept.push(DoneItem {
                key,
                seq,
                work: None,
                pairs,
                batches: Vec::new(),
            });
            seq += 1;
        }

        // Canonical merge in plan-unit order (completion order within a
        // unit), then the same epilogue as `run` over the full shadow
        // execution — bit-identical report and telemetry for clean runs.
        kept.sort_by(|a, b| a.key.cmp(&b.key).then(a.seq.cmp(&b.seq)));
        let mut result = ResultSet::default();
        for entry in &kept {
            result.extend(&entry.pairs);
        }
        let timings: Vec<BatchTiming> = exec
            .batch_reports
            .iter()
            .map(|b| BatchTiming {
                kernel_s: b.kernel_s,
                transfer_s: b.transfer_s,
            })
            .collect();
        let pipeline = StreamPipeline::new(c.batching.num_streams).schedule(&timings);
        let total_pairs = result.len();
        let num_batches = exec.batch_reports.len();
        let degradation = exec.recovery.clone().into_report(num_batches);
        let recovery_s = degradation
            .as_ref()
            .map_or(0.0, |d| d.backoff_s + d.cpu_model_s);
        if telemetry_on {
            self.record_tail_events(
                &estimate,
                exec.gather_ns,
                num_batches,
                total_pairs,
                pipeline.total_s + recovery_s,
                &exec.totals,
                degradation.as_ref().is_some_and(|d| d.points_degraded > 0),
            );
        }

        // Hybrid accounting: the GPU side is charged only for its kept
        // prefix (rescheduled as its own pipeline) plus its recovery time;
        // the CPU side is costed by the calibrated backend model. Both run
        // overlapped, so the hybrid response is their maximum.
        let gpu_timings: Vec<BatchTiming> = exec
            .batch_reports
            .iter()
            .zip(&exec.batch_items)
            .filter(|&(_, &item_idx)| items[item_idx].unit < cut)
            .map(|(b, _)| BatchTiming {
                kernel_s: b.kernel_s,
                transfer_s: b.transfer_s,
            })
            .collect();
        let gpu_response_s = StreamPipeline::new(c.batching.num_streams)
            .schedule(&gpu_timings)
            .total_s
            + exec.recovery.backoff_s()
            + exec.recovery.cpu.map_or(0.0, |(_, _, s)| s);
        let cpu_model_s = policy
            .cpu
            .model_seconds(&cpu_stats, N as u32, &c.gpu.cost, cpu_items);
        let makespan_s = gpu_response_s.max(cpu_model_s);
        if telemetry_on {
            self.telemetry.record(
                Event::new("hybrid", "backend_done")
                    .str("backend", "gpu")
                    .u64("units", cut.min(f_complete) as u64)
                    .u64("pairs", gpu_pairs_total as u64)
                    .f64("model_s", gpu_response_s),
            );
            self.telemetry.record(
                Event::new("hybrid", "backend_done")
                    .str("backend", "cpu")
                    .u64("units", cpu_items as u64)
                    .u64("pairs", cpu_pairs_total as u64)
                    .f64("model_s", cpu_model_s)
                    .u64("host_ns", cpu_host_ns),
            );
        }

        Ok(HybridOutcome {
            result,
            report: JoinReport {
                estimate,
                num_batches,
                batches: exec.batch_reports,
                pipeline,
                totals: exec.totals,
                total_pairs,
                degradation,
                prepass,
            },
            hybrid: HybridReport {
                units: n,
                cut,
                gpu_units: cut.min(f_complete),
                cpu_units: cpu_items,
                spilled_units,
                forced: choice.forced,
                predicted_gpu_s: choice.predicted_gpu_s,
                predicted_cpu_s: choice.predicted_cpu_s,
                gpu_response_s,
                cpu_model_s,
                cpu_stats,
                makespan_s,
                jobs: policy.jobs.max(1),
            },
        })
    }

    /// Emits the setup-phase telemetry (index build, workload profile) and
    /// builds the batch plan, recording the estimate-and-plan event. Both
    /// the single-device and the fleet paths plan through here, so their
    /// planning telemetry is identical.
    fn plan_with_telemetry(&self) -> (ResultEstimate, BatchPlan, Option<PrePassReport>) {
        if self.telemetry.is_enabled() {
            // Index build and workload profiling happened in `new()`; their
            // host durations were captured there and are reported once.
            self.telemetry.record(
                Event::new("executor.phase", "index_build")
                    .u64("points", self.grid.num_points() as u64)
                    .u64("cells", self.grid.num_cells() as u64)
                    .u64("host_ns", self.index_build_ns),
            );
            self.telemetry.record(
                Event::new("executor.phase", "workload_profile")
                    .bool("profiled", self.profile.is_some())
                    .str("balancing", format!("{:?}", self.config.balancing))
                    .u64("host_ns", self.profile_ns),
            );
        }
        let sw_plan = Stopwatch::start();
        let (estimate, plan, prepass) = self.plan_with(1);
        if self.telemetry.is_enabled() {
            self.telemetry.record(
                Event::new("executor.phase", "estimate_and_plan")
                    .u64("multiplier", 1)
                    .u64("sampled_points", estimate.sampled_points as u64)
                    .u64("sampled_pairs", estimate.sampled_pairs)
                    .u64("estimated_total", estimate.estimated_total)
                    .u64("num_batches", plan.num_batches() as u64)
                    .u64("host_ns", sw_plan.elapsed_ns()),
            );
            if let Some(pp) = &prepass {
                self.record_prepass_events(pp);
            }
        }
        (estimate, plan, prepass)
    }

    /// Emits the `sort`/`scan` phase events of a device pre-pass: the
    /// model-second cost of the planner's sorts and prefix sums, which the
    /// host backend performs invisibly. Only phases that actually ran are
    /// emitted (e.g. a STATIC-balancing join sorts nothing).
    fn record_prepass_events(&self, pp: &PrePassReport) {
        if pp.sort_invocations > 0 {
            self.telemetry.record(
                Event::new("executor.phase", "sort")
                    .str("backend", "device")
                    .u64("invocations", pp.sort_invocations as u64)
                    .u64("launches", pp.sort_launches)
                    .u64("passes", pp.sort_passes as u64)
                    .u64("cycles", pp.sort_cycles)
                    .f64("model_s", pp.sort_model_s)
                    .u64("transient_retries", pp.transient_retries as u64)
                    .f64("backoff_model_s", pp.backoff_s)
                    .bool("degraded_to_host", pp.degraded_to_host),
            );
        }
        if pp.scan_invocations > 0 {
            self.telemetry.record(
                Event::new("executor.phase", "scan")
                    .str("backend", "device")
                    .u64("invocations", pp.scan_invocations as u64)
                    .u64("launches", pp.scan_launches)
                    .u64("cycles", pp.scan_cycles)
                    .f64("model_s", pp.scan_model_s)
                    .u64("transient_retries", pp.transient_retries as u64)
                    .f64("backoff_model_s", pp.backoff_s)
                    .bool("degraded_to_host", pp.degraded_to_host),
            );
        }
    }

    /// Cuts the fleet's shard regions. Under [`SortBackend::Device`] with
    /// the workload-aware strategy, the cumulative-weight prefix behind the
    /// cut runs through the device exclusive-scan chain (telemetry records
    /// its cost as a `scan` phase with `site = "fleet_cut"`); the cut
    /// points are identical to the host fold's by construction, and the
    /// chain's cost stays **out** of [`JoinReport::prepass`] so the
    /// canonical report remains bit-identical to the single-device run.
    fn partition_for_fleet(
        &self,
        weights: &[u64],
        devices: usize,
        strategy: ShardStrategy,
    ) -> Vec<std::ops::Range<usize>> {
        if strategy == ShardStrategy::WorkloadAware {
            if let Some(mut pp) = self.device_prepass() {
                if let Some(prefix) = pp.inclusive_prefix(weights, "fleet_cut") {
                    if self.telemetry.is_enabled() {
                        let s = &pp.stats;
                        self.telemetry.record(
                            Event::new("executor.phase", "scan")
                                .str("backend", "device")
                                .str("site", "fleet_cut")
                                .u64("invocations", s.scan_invocations as u64)
                                .u64("launches", s.scan_launches)
                                .u64("cycles", s.scan_cycles)
                                .f64("model_s", s.scan_model_s)
                                .u64("transient_retries", s.transient_retries as u64)
                                .f64("backoff_model_s", s.backoff_s)
                                .bool("degraded_to_host", false),
                        );
                    }
                    return partition_units_from_prefix(&prefix, devices, strategy);
                }
            }
        }
        partition_units(weights, devices, strategy)
    }

    /// Result-buffer capacity for a plan. With the device-saturation floor
    /// enabled, the pinned buffer grows to fit the fewer, larger batches;
    /// otherwise it is exactly `b_s`.
    fn capacity_for(&self, estimate: &ResultEstimate, plan: &BatchPlan) -> usize {
        if self.config.batching.max_batches > 0 {
            buffer_capacity_for(estimate, plan.num_batches(), &self.config.batching)
        } else {
            self.config.batching.batch_result_capacity
        }
    }

    /// Records the end-of-join telemetry: gather phase, estimator accuracy,
    /// and the join summary. Shared verbatim by the single-device and fleet
    /// paths so their canonical event streams match.
    #[allow(clippy::too_many_arguments)]
    fn record_tail_events(
        &self,
        estimate: &ResultEstimate,
        gather_ns: u64,
        num_batches: usize,
        total_pairs: usize,
        response_s: f64,
        totals: &WarpExecution,
        degraded: bool,
    ) {
        self.telemetry
            .record(Event::new("executor.phase", "gather").u64("host_ns", gather_ns));
        // How well the 1 % sample predicted the true result size — the
        // quantity that decides whether the batch plan over- or
        // under-provisions the result buffers (§III-D). A zero-pair join
        // has no meaningful ratio: the field is omitted (NaN is not valid
        // JSON) and `zero_actual` flags the case instead.
        let mut accuracy = Event::new("executor", "estimator_accuracy")
            .u64("estimated_total", estimate.estimated_total)
            .u64("actual_total", total_pairs as u64)
            .bool("zero_actual", total_pairs == 0);
        if total_pairs > 0 {
            accuracy = accuracy.f64(
                "estimate_over_actual",
                estimate.estimated_total as f64 / total_pairs as f64,
            );
        }
        self.telemetry.record(accuracy);
        self.telemetry.record(
            Event::new("executor", "join_summary")
                .str("config", self.config.label())
                .u64("num_batches", num_batches as u64)
                .u64("total_pairs", total_pairs as u64)
                .f64("response_model_s", response_s)
                .f64("wee", totals.efficiency())
                .u64(
                    "distance_calcs",
                    totals.lane_ops_by_kind[warpsim::OpKind::Distance.index()],
                )
                .bool("degraded", degraded),
        );
    }

    /// Executes the given plan units on one device, with the full per-batch
    /// fault-recovery loop, and hands back the raw shard output (pairs,
    /// batch reports, counters) for the caller to schedule and merge. The
    /// single-device [`SelfJoin::run`] passes every unit with
    /// `ctx.device = None`, which keeps its behaviour and telemetry
    /// bit-identical to the pre-fleet executor; the fleet path passes each
    /// shard's contiguous unit region with its device's context.
    fn execute_units(
        &self,
        plan: &BatchPlan,
        items: &[WorkItem],
        ctx: &ShardCtx<'_>,
    ) -> Result<ShardExecution, JoinError> {
        self.execute_units_with(plan, items, ctx, self.telemetry)
    }

    /// [`SelfJoin::execute_units`] with an explicit telemetry sink, so a
    /// caller running several shards concurrently can capture each shard's
    /// event stream into its own buffer.
    ///
    /// Dispatches between the serial walk and the host-parallel item merge.
    /// Independent items execute on pool threads only when no fault plane
    /// is attached — fault admission is a cross-item serial protocol (the
    /// plane's schedule is keyed by global launch index), so faulted
    /// contexts always take the serial walk. Either path produces
    /// bit-identical results, reports, and event streams; only wall-clock
    /// time differs.
    fn execute_units_with(
        &self,
        plan: &BatchPlan,
        items: &[WorkItem],
        ctx: &ShardCtx<'_>,
        sink: &dyn Telemetry,
    ) -> Result<ShardExecution, JoinError> {
        let jobs = self.config.resolved_host_jobs();
        if ctx.fault.is_some() || jobs <= 1 || items.len() <= 1 {
            return self.execute_units_serial(plan, items, ctx, sink, jobs.max(1));
        }
        self.execute_units_parallel(plan, items, ctx, sink, jobs)
    }

    /// The serial item walk: one item at a time, depth-first through its
    /// recovery splits. `workers` bounds the host threads the warp
    /// simulator may use underneath each launch.
    fn execute_units_serial(
        &self,
        plan: &BatchPlan,
        items: &[WorkItem],
        ctx: &ShardCtx<'_>,
        sink: &dyn Telemetry,
        workers: usize,
    ) -> Result<ShardExecution, JoinError> {
        let telemetry_on = sink.is_enabled();
        let c = &self.config;
        let issue_order = c.issue_order();
        let tag = |event: Event| match ctx.device {
            Some(d) => event.u64("device", d),
            None => event,
        };
        let mut result = ResultSet::default();
        let mut batch_reports: Vec<BatchReport> = Vec::with_capacity(items.len());
        let mut batch_items: Vec<usize> = Vec::with_capacity(items.len());
        let mut totals = WarpExecution {
            warp_size: ctx.gpu.warp_size,
            ..WarpExecution::default()
        };
        let mut buffer = DeviceBuffer::with_capacity(ctx.capacity);
        let mut gather_ns: u64 = 0;

        let counter = ctx.counter;
        let queue_limit = ctx.queue_limit;
        let mut pending: VecDeque<Pending> = items
            .iter()
            .enumerate()
            .filter_map(|(idx, item)| match &item.queries {
                Some(queries) if queries.is_empty() => None,
                Some(queries) => Some(Pending::split(idx, queries.clone(), item.split_attempts)),
                None => match plan {
                    BatchPlan::Queue { chunks, .. } if chunks[item.unit].is_empty() => None,
                    _ => Some(Pending::planned(idx, item.unit)),
                },
            })
            .collect();
        // Queue-plan drain target: where the head must land once the last
        // planned chunk of this item list is done. `None` when the list
        // carries no non-empty planned chunk (then the head never moves).
        let expected_final: Option<u64> = match plan {
            BatchPlan::Queue { chunks, .. } => items
                .iter()
                .filter(|item| item.queries.is_none() && !chunks[item.unit].is_empty())
                .map(|item| chunks[item.unit].end as u64)
                .next_back(),
            _ => None,
        };
        let mut recovery = RecoveryCounters::default();
        let mut degraded: Option<Vec<u32>> = None;
        let mut cpu_tail_key: Option<usize> = None;
        let mut interruption: Option<Interruption> = None;
        // The plan-unit merge key of a pending entry.
        let key_of = |p: &Pending| -> usize {
            match &p.work {
                Work::Planned(i) => *i,
                Work::Split(_) => items[p.item].unit,
            }
        };

        // Resolves a unit back to its query set (for splits, counter
        // repairs, and degradation hand-off).
        let queries_of = |work: &Work| -> Vec<u32> {
            match (work, plan) {
                (Work::Planned(i), BatchPlan::Strided { batches }) => batches[*i].clone(),
                (Work::Planned(i), BatchPlan::Queue { order, chunks }) => {
                    order[chunks[*i].clone()].to_vec()
                }
                (Work::Split(queries), _) => queries.clone(),
            }
        };

        while let Some(mut unit) = pending.pop_front() {
            let chunk_range = match (&unit.work, plan) {
                (Work::Planned(i), BatchPlan::Queue { chunks, .. }) => Some(chunks[*i].clone()),
                _ => None,
            };
            if let Some(chunk) = &chunk_range {
                // Aim the queue head at this chunk's start. On a contiguous
                // unit list this is a no-op (the previous chunk left the
                // head exactly here), but it lets recovery hand arbitrary
                // unit subsets to a surviving device and still pop exactly
                // the ranges the original plan assigned them.
                counter.store(chunk.start as u64);
                // Host-side injection: a stuck/corrupted device counter,
                // observed just before this chunk launches.
                if let Some(plane) = ctx.fault {
                    if let Some(bump) = plane.take_counter_bump() {
                        counter.fetch_add(bump);
                        if telemetry_on {
                            sink.record(tag(Event::new("executor", "fault_injected")
                                .str("kind", "counter_bump")
                                .u64("bump", bump)));
                        }
                    }
                }
            }
            let (assignment, num_groups) = match (&unit.work, plan) {
                (Work::Planned(i), BatchPlan::Strided { batches }) => (
                    Assignment::Static {
                        queries: &batches[*i],
                    },
                    batches[*i].len(),
                ),
                (Work::Planned(i), BatchPlan::Queue { order, chunks }) => (
                    Assignment::Queue {
                        order,
                        counter,
                        limit: queue_limit,
                    },
                    chunks[*i].len(),
                ),
                (Work::Split(queries), _) => (Assignment::Static { queries }, queries.len()),
            };
            let source = JoinKernelSource {
                grid: &self.grid,
                points: self.points,
                resolved: &self.resolved,
                epsilon: c.epsilon,
                k: c.k,
                warp_size: ctx.gpu.warp_size,
                cost: ctx.gpu.cost,
                assignment,
                num_groups,
            };
            let mut opts = LaunchOptions::with_telemetry(sink);
            opts.fault_plane = ctx.fault;
            opts.step_mode = c.step_mode;
            opts.workers = Some(workers);
            match launch_with(ctx.gpu, &source, issue_order, &mut buffer, &opts) {
                Ok(launch_report) => {
                    // Queue-drain invariant, promoted from a debug assert:
                    // each pop advances the counter by the group's slot
                    // count, so chunk `i` must leave the head at exactly
                    // `chunk.end`. Anything else means the counter is
                    // corrupt and the chunk's coverage is unknown.
                    if let Some(chunk) = &chunk_range {
                        let expected = chunk.end as u64;
                        let observed = counter.load();
                        if observed != expected {
                            buffer.clear();
                            unit.counter_attempts += 1;
                            recovery.counter_retries += 1;
                            let backoff = c
                                .retry
                                .backoff_for(c.retry.counter_backoff_s, unit.counter_attempts);
                            // The corrupted launch's kernel time is wasted
                            // serial host time, not pipeline time.
                            recovery
                                .backoff_terms
                                .push(backoff + launch_report.elapsed_seconds());
                            if telemetry_on {
                                sink.record(tag(Event::new("executor", "fault_retry")
                                    .str("class", "counter")
                                    .u64("attempt", unit.counter_attempts as u64)
                                    .u64("expected", expected)
                                    .u64("observed", observed)
                                    .f64("backoff_model_s", backoff)));
                            }
                            if unit.counter_attempts > c.retry.max_counter_retries {
                                return Err(JoinError::Launch(LaunchError::CounterFault(
                                    CounterFault { expected, observed },
                                )));
                            }
                            // Repair the head for the chunks behind us and
                            // re-run exactly this chunk's queries statically.
                            counter.store(expected);
                            let queries = queries_of(&unit.work);
                            pending.push_front(Pending {
                                item: unit.item,
                                work: Work::Split(queries),
                                transient_attempts: unit.transient_attempts,
                                counter_attempts: unit.counter_attempts,
                                split_attempts: unit.split_attempts,
                            });
                            continue;
                        }
                    }
                    let pairs = buffer.len();
                    let sw_gather = Stopwatch::start();
                    result.extend(buffer.as_slice());
                    buffer.clear();
                    gather_ns += sw_gather.elapsed_ns();
                    totals.accumulate(&launch_report.totals);
                    let kernel_s = launch_report.elapsed_seconds();
                    let mut transfer_s = c.batching.transfer_seconds(pairs);
                    if let Some(plane) = ctx.fault {
                        if let Some(stall_s) = plane.take_transfer_stall() {
                            // A stalled copy engine lengthens this batch's
                            // transfer; it flows through the stream
                            // pipeline like any slow transfer.
                            transfer_s += stall_s;
                            recovery.transfer_stalls += 1;
                            if telemetry_on {
                                sink.record(tag(Event::new("executor", "fault_injected")
                                    .str("kind", "transfer_stall")
                                    .f64("stall_model_s", stall_s)));
                            }
                        }
                    }
                    if telemetry_on {
                        sink.record(tag(Event::new("executor", "batch")
                            .u64("index", batch_reports.len() as u64)
                            .u64("pairs", pairs as u64)
                            .f64("kernel_model_s", kernel_s)
                            .f64("transfer_model_s", transfer_s)));
                    }
                    batch_reports.push(BatchReport {
                        launch: launch_report,
                        pairs,
                        kernel_s,
                        transfer_s,
                    });
                    batch_items.push(unit.item);
                }
                Err(LaunchError::ResultOverflow(overflow)) => {
                    buffer.clear();
                    // An overflowing queue chunk has already consumed its
                    // pops — repair the head so the chunks behind it still
                    // cover their own ranges, then split this chunk's exact
                    // queries into static halves.
                    if let Some(chunk) = &chunk_range {
                        counter.store(chunk.end as u64);
                    }
                    let mut queries = match unit.work {
                        Work::Split(queries) => queries,
                        ref planned => queries_of(planned),
                    };
                    // The split budget is the unit's own ancestry depth —
                    // never a run-global tally — so the terminal decision
                    // depends only on this unit's history and stays
                    // identical under any sharding or host-parallel
                    // interleaving of the other units.
                    if queries.len() <= 1 || unit.split_attempts >= c.retry.max_overflow_splits {
                        if telemetry_on {
                            sink.record(tag(Event::new("executor", "overflow_recovery")
                                .bool("terminal", true)
                                .u64("splits_used", recovery.overflow_splits as u64)
                                .u64("batch_queries", queries.len() as u64)
                                .u64("attempted", overflow.attempted as u64)
                                .u64("capacity", overflow.capacity as u64)));
                        }
                        return Err(JoinError::Launch(LaunchError::ResultOverflow(overflow)));
                    }
                    recovery.overflow_splits += 1;
                    // Escalate with this unit's own split ancestry, not the
                    // run-wide split count: per-unit attempt keying keeps
                    // recovery deterministic under any sharding of the plan.
                    let attempt = unit.split_attempts + 1;
                    let backoff = c.retry.backoff_for(c.retry.overflow_backoff_s, attempt);
                    recovery.backoff_terms.push(backoff);
                    let right = queries.split_off(queries.len() / 2);
                    if telemetry_on {
                        sink.record(tag(Event::new("executor", "overflow_recovery")
                            .bool("terminal", false)
                            .u64("split", recovery.overflow_splits as u64)
                            .u64("attempt", attempt as u64)
                            .u64("left_queries", queries.len() as u64)
                            .u64("right_queries", right.len() as u64)
                            .f64("backoff_model_s", backoff)));
                    }
                    pending.push_front(Pending::split(unit.item, right, attempt));
                    pending.push_front(Pending::split(unit.item, queries, attempt));
                }
                Err(err @ LaunchError::Transient(_)) => {
                    // Transient faults fail at admission, before any queue
                    // pop: counter and buffer are untouched, so the same
                    // unit can simply be re-submitted.
                    unit.transient_attempts += 1;
                    recovery.transient_retries += 1;
                    let backoff = c
                        .retry
                        .backoff_for(c.retry.transient_backoff_s, unit.transient_attempts);
                    recovery.backoff_terms.push(backoff);
                    if telemetry_on {
                        sink.record(tag(Event::new("executor", "fault_retry")
                            .str("class", "transient")
                            .u64("attempt", unit.transient_attempts as u64)
                            .f64("backoff_model_s", backoff)));
                    }
                    if unit.transient_attempts <= c.retry.max_transient_retries {
                        pending.push_front(unit);
                        continue;
                    }
                    // Persistently failing launch: treat the device as
                    // unusable for the rest of the join.
                    if ctx.defer {
                        let mut remnants = vec![remnant_of(items, unit)];
                        remnants.extend(pending.drain(..).map(|p| remnant_of(items, p)));
                        interruption = Some(Interruption {
                            error: err,
                            device_lost: false,
                            remnants,
                        });
                        break;
                    }
                    if !c.retry.cpu_fallback {
                        return Err(JoinError::Launch(err));
                    }
                    cpu_tail_key = Some(key_of(&unit));
                    let mut remaining = queries_of(&unit.work);
                    for p in pending.drain(..) {
                        remaining.extend(queries_of(&p.work));
                    }
                    degraded = Some(remaining);
                }
                Err(err @ LaunchError::DeviceLost(_)) => {
                    recovery.device_lost = true;
                    if ctx.defer {
                        let mut remnants = vec![remnant_of(items, unit)];
                        remnants.extend(pending.drain(..).map(|p| remnant_of(items, p)));
                        interruption = Some(Interruption {
                            error: err,
                            device_lost: true,
                            remnants,
                        });
                        break;
                    }
                    if !c.retry.cpu_fallback {
                        return Err(JoinError::Launch(err));
                    }
                    cpu_tail_key = Some(key_of(&unit));
                    let mut remaining = queries_of(&unit.work);
                    for p in pending.drain(..) {
                        remaining.extend(queries_of(&p.work));
                    }
                    degraded = Some(remaining);
                }
                Err(err @ LaunchError::CounterFault(_)) => {
                    // Not raised by the device model today; never retryable.
                    return Err(JoinError::Launch(err));
                }
            }
            if degraded.is_some() {
                break;
            }
        }

        if let Some(remaining) = &degraded {
            let sw_cpu = Stopwatch::start();
            let mut cpu_pairs: Vec<(u32, u32)> = Vec::new();
            let stats = cpu_join_queries(
                &self.grid,
                self.points,
                &self.resolved,
                c.epsilon,
                remaining,
                &mut cpu_pairs,
            );
            result.extend(&cpu_pairs);
            let cpu_model_s = c
                .cpu_fallback
                .model_seconds(&stats, N as u32, &ctx.gpu.cost);
            recovery.cpu = Some((remaining.len(), stats.pairs, cpu_model_s));
            if telemetry_on {
                sink.record(tag(Event::new("executor", "degradation")
                    .u64("batches_salvaged", batch_reports.len() as u64)
                    .u64("points_degraded", remaining.len() as u64)
                    .u64("cpu_pairs", stats.pairs)
                    .u64("cpu_distance_calcs", stats.distance_calcs)
                    .f64("cpu_model_s", cpu_model_s)
                    .bool("device_lost", recovery.device_lost)
                    .u64("host_ns", sw_cpu.elapsed_ns())));
            }
        } else if interruption.is_none() {
            // Final queue-drain invariant: a fully GPU-completed queue shard
            // must have consumed exactly its slice of the sorted dataset
            // (for the single-device path, the whole of it).
            if let Some(expected) = expected_final {
                let observed = counter.load();
                if observed != expected {
                    return Err(JoinError::Launch(LaunchError::CounterFault(CounterFault {
                        expected,
                        observed,
                    })));
                }
            }
        }

        Ok(ShardExecution {
            result,
            batch_reports,
            batch_items,
            totals,
            gather_ns,
            recovery,
            interruption,
            cpu_tail_key,
        })
    }

    /// Executes independent work items concurrently on the host pool.
    ///
    /// Each item runs alone through [`SelfJoin::execute_units_serial`]
    /// against a **private** queue-head counter — every queue chunk re-aims
    /// the head at its own start before launching, so a private head pops
    /// exactly the chunk's range — with its events captured into a
    /// per-item buffer. Outputs are then merged strictly in item order:
    /// pairs, batch reports, warp totals, recovery tallies, and the spliced
    /// event stream are bit-identical to the serial walk (which executes
    /// items depth-first, so its outputs are grouped by item in item
    /// order); only wall-clock time changes. Run-global running counts in
    /// events (`executor.batch` `index`, `executor.overflow_recovery`
    /// `split`/`splits_used`) are restored during the splice by offsetting
    /// each item's local counts with the totals of the items before it.
    ///
    /// Only clean-path recovery (result-buffer overflow splits, whose
    /// budget is per-unit) can occur here: the dispatcher routes every
    /// faulted context to the serial walk, so transient/device-lost/counter
    /// handling — and therefore interruptions, degradation, and CPU tails —
    /// never cross threads.
    fn execute_units_parallel(
        &self,
        plan: &BatchPlan,
        items: &[WorkItem],
        ctx: &ShardCtx<'_>,
        sink: &dyn Telemetry,
        jobs: usize,
    ) -> Result<ShardExecution, JoinError> {
        let telemetry_on = sink.is_enabled();
        let subs: Vec<(EventBuffer, Result<ShardExecution, JoinError>)> =
            crate::pool::par_map(jobs, items.to_vec(), |item| {
                let buffer = EventBuffer::new(telemetry_on);
                let counter = DeviceCounter::new();
                let sub_ctx = ShardCtx {
                    device: ctx.device,
                    gpu: ctx.gpu,
                    fault: None,
                    counter: &counter,
                    capacity: ctx.capacity,
                    queue_limit: ctx.queue_limit,
                    defer: ctx.defer,
                };
                let res = self.execute_units_serial(
                    plan,
                    std::slice::from_ref(&item),
                    &sub_ctx,
                    &buffer,
                    1,
                );
                (buffer, res)
            });

        let mut result = ResultSet::default();
        let mut batch_reports: Vec<BatchReport> = Vec::with_capacity(items.len());
        let mut batch_items: Vec<usize> = Vec::with_capacity(items.len());
        let mut totals = WarpExecution {
            warp_size: ctx.gpu.warp_size,
            ..WarpExecution::default()
        };
        let mut gather_ns: u64 = 0;
        let mut recovery = RecoveryCounters::default();
        for (item_idx, (buffer, res)) in subs.into_iter().enumerate() {
            // Offsets restoring the run-global running counts this item's
            // events would have carried in the serial walk.
            let batch_offset = batch_reports.len() as u64;
            let split_offset = recovery.overflow_splits as u64;
            if telemetry_on {
                for mut event in buffer.into_events() {
                    if event.scope == "executor" {
                        match event.name {
                            "batch" => bump_u64_field(&mut event, "index", batch_offset),
                            "overflow_recovery" => {
                                bump_u64_field(&mut event, "split", split_offset);
                                bump_u64_field(&mut event, "splits_used", split_offset);
                            }
                            _ => {}
                        }
                    }
                    sink.record(event);
                }
            }
            // An error aborts the merge exactly where the serial walk would
            // have stopped: this item's partial events are spliced, later
            // items' buffers are dropped unseen.
            let sub = res?;
            debug_assert!(
                sub.interruption.is_none() && sub.cpu_tail_key.is_none(),
                "faultless items cannot interrupt or degrade"
            );
            result.extend(sub.result.pairs());
            for report in sub.batch_reports {
                totals.accumulate(&report.launch.totals);
                batch_reports.push(report);
                batch_items.push(item_idx);
            }
            gather_ns += sub.gather_ns;
            recovery.merge(&sub.recovery);
        }
        // Leave the shared queue head where the serial walk would have:
        // drained past this item list's last planned chunk.
        if let BatchPlan::Queue { chunks, .. } = plan {
            if let Some(expected) = items
                .iter()
                .filter(|item| item.queries.is_none() && !chunks[item.unit].is_empty())
                .map(|item| chunks[item.unit].end as u64)
                .next_back()
            {
                ctx.counter.store(expected);
            }
        }
        Ok(ShardExecution {
            result,
            batch_reports,
            batch_items,
            totals,
            gather_ns,
            recovery,
            interruption: None,
            cpu_tail_key: None,
        })
    }
}

/// A thread-local telemetry capture: events recorded here are spliced into
/// the real sink afterwards, in a deterministic merge order chosen by the
/// capturing caller (item order within a shard, device order across a
/// fleet round).
struct EventBuffer {
    enabled: bool,
    events: std::sync::Mutex<Vec<Event>>,
}

impl EventBuffer {
    fn new(enabled: bool) -> Self {
        EventBuffer {
            enabled,
            events: std::sync::Mutex::new(Vec::new()),
        }
    }

    fn into_events(self) -> Vec<Event> {
        self.events.into_inner().unwrap()
    }
}

impl Telemetry for EventBuffer {
    fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn record(&self, event: Event) {
        if self.enabled {
            self.events.lock().unwrap().push(event);
        }
    }
}

/// Adds `delta` to an event's `key` field (when present and `u64`-typed):
/// the splice-time restoration of run-global running counts in buffered
/// per-item event streams.
fn bump_u64_field(event: &mut Event, key: &str, delta: u64) {
    if delta == 0 {
        return;
    }
    for (k, v) in event.fields.iter_mut() {
        if *k == key {
            if let Value::U64(x) = v {
                *x += delta;
            }
        }
    }
}

/// Rebuilds the re-submittable [`WorkItem`] of an unexecuted pending entry:
/// a still-planned unit stays planned (a surviving device re-aims its own
/// queue head at the chunk), while recovery-produced query sets travel as
/// explicit query items keyed to their originating unit.
fn remnant_of(items: &[WorkItem], p: Pending) -> WorkItem {
    match p.work {
        Work::Planned(i) => WorkItem {
            unit: i,
            queries: None,
            split_attempts: p.split_attempts,
        },
        Work::Split(queries) => WorkItem {
            unit: items[p.item].unit,
            queries: Some(queries),
            split_attempts: p.split_attempts,
        },
    }
}

/// Execution context of one shard — or, on the single-device path, of the
/// whole join: which device runs it (for telemetry tagging and the GPU
/// configuration), through which fault plane and queue head, and how its
/// result buffer is sized.
struct ShardCtx<'s> {
    /// Device id for telemetry; `None` on the single-device path keeps its
    /// event stream bit-identical to the pre-fleet executor.
    device: Option<u64>,
    /// The GPU executing this shard's launches.
    gpu: &'s GpuConfig,
    /// This device's fault plane, if any.
    fault: Option<&'s FaultPlane>,
    /// This device's queue-head atomic.
    counter: &'s DeviceCounter,
    /// Result-buffer capacity in pairs.
    capacity: usize,
    /// Global queue length (`order.len()`), the pop limit shared by every
    /// shard so per-chunk launches stay bit-identical to a single device.
    queue_limit: u64,
    /// Fleet failover mode: instead of degrading to the CPU (or erroring)
    /// on persistent device failure, hand the unexecuted work items back to
    /// the caller as an [`Interruption`] so they can be re-sharded onto
    /// surviving devices.
    defer: bool,
}

/// One top-level item of shard work: a unit of the original batch plan, or
/// an explicit query set carried over from an interrupted device (a split
/// half whose sibling already completed elsewhere). `unit` is always the
/// originating plan-unit index — the merge key that lets the fleet
/// reassemble shard outputs in original plan order no matter which device
/// executed what.
#[derive(Clone)]
struct WorkItem {
    /// Originating plan-unit index (the canonical merge key).
    unit: usize,
    /// `None` runs the planned unit itself; `Some` runs an explicit query
    /// set statically.
    queries: Option<Vec<u32>>,
    /// Overflow-split ancestry carried across devices, so a re-homed split
    /// keeps escalating its backoff instead of resetting it.
    split_attempts: u32,
}

impl WorkItem {
    fn planned(unit: usize) -> Self {
        WorkItem {
            unit,
            queries: None,
            split_attempts: 0,
        }
    }
}

/// Unexecuted remainder of a persistently failed shard (only produced under
/// [`ShardCtx::defer`]): the launch error that killed it, and its
/// unexecuted work items in plan order.
struct Interruption {
    /// What killed the shard.
    error: LaunchError,
    /// Whether the device latched `DeviceLost` (as opposed to exhausting
    /// its transient budget).
    device_lost: bool,
    /// Unstarted work, in execution (plan) order, ready for re-submission
    /// to another device.
    remnants: Vec<WorkItem>,
}

/// What one shard's execution produced, before pipeline scheduling.
struct ShardExecution {
    result: ResultSet,
    batch_reports: Vec<BatchReport>,
    /// The submitting item index (into the `items` slice given to
    /// [`SelfJoin::execute_units`]) of every batch, parallel to
    /// `batch_reports`. Items complete strictly in order, so this is
    /// non-decreasing.
    batch_items: Vec<usize>,
    totals: WarpExecution,
    gather_ns: u64,
    recovery: RecoveryCounters,
    /// Present when the shard failed persistently under `defer` mode.
    interruption: Option<Interruption>,
    /// The plan-unit key where the in-shard CPU fallback (non-defer mode)
    /// took over, if it ran: its pairs sort after that unit's completed
    /// batches in the canonical merge.
    cpu_tail_key: Option<usize>,
}

/// One completed work item's checkpointed output, tagged for the canonical
/// fleet merge: `key` is the originating plan-unit index, `seq` the global
/// completion order (the tiebreak that keeps same-unit fragments — e.g. a
/// salvaged split half and its re-homed sibling — in execution order).
struct DoneItem {
    key: usize,
    seq: usize,
    /// The completed item itself, when it is whole and could be respawned
    /// verbatim on another device (straggler cancel-and-reassign). `None`
    /// for fragments salvaged from an interrupted shard and for CPU
    /// segments — those are checkpointed output only.
    work: Option<WorkItem>,
    pairs: Vec<(u32, u32)>,
    batches: Vec<BatchReport>,
}

/// Accumulated per-device state across recovery rounds.
struct DeviceState {
    /// Cleared when the device latches a persistent failure; unusable
    /// devices never receive re-sharded work.
    usable: bool,
    done: Vec<DoneItem>,
    recovery: RecoveryCounters,
    reassigned_in: usize,
    reassigned_out: usize,
}

impl DeviceState {
    fn new() -> Self {
        DeviceState {
            usable: true,
            done: Vec::new(),
            recovery: RecoveryCounters::default(),
            reassigned_in: 0,
            reassigned_out: 0,
        }
    }

    /// This device's pipeline schedule over everything it has executed so
    /// far, and its response time: pipeline makespan plus serially accrued
    /// recovery time (retry backoff, in-shard CPU fallback).
    fn pipeline_and_response(&self, num_streams: usize) -> (warpsim::PipelineReport, f64) {
        let timings: Vec<BatchTiming> = self
            .done
            .iter()
            .flat_map(|di| di.batches.iter())
            .map(|b| BatchTiming {
                kernel_s: b.kernel_s,
                transfer_s: b.transfer_s,
            })
            .collect();
        let pipeline = StreamPipeline::new(num_streams).schedule(&timings);
        let cpu_s = self.recovery.cpu.map_or(0.0, |(_, _, s)| s);
        let response = pipeline.total_s + self.recovery.backoff_s() + cpu_s;
        (pipeline, response)
    }
}

/// A unit of pending executor work: a batch/chunk of the original plan, or
/// an explicit query set (recovery split, counter repair, or a query-set
/// work item handed over from another device).
enum Work {
    Planned(usize),
    Split(Vec<u32>),
}

struct Pending {
    /// Index of the submitting [`WorkItem`] in the shard's item list.
    item: usize,
    work: Work,
    transient_attempts: u32,
    counter_attempts: u32,
    /// How many overflow splits produced this unit (its ancestry depth):
    /// the geometric overflow backoff escalates with it, like the other
    /// retry classes escalate with their per-unit attempt counts.
    split_attempts: u32,
}

impl Pending {
    fn planned(item: usize, index: usize) -> Self {
        Pending {
            item,
            work: Work::Planned(index),
            transient_attempts: 0,
            counter_attempts: 0,
            split_attempts: 0,
        }
    }

    fn split(item: usize, queries: Vec<u32>, split_attempts: u32) -> Self {
        Pending {
            item,
            work: Work::Split(queries),
            transient_attempts: 0,
            counter_attempts: 0,
            split_attempts,
        }
    }
}

/// Tallies of what recovery had to do during one shard's execution.
#[derive(Clone, Default)]
struct RecoveryCounters {
    transient_retries: u32,
    overflow_splits: u32,
    counter_retries: u32,
    transfer_stalls: u32,
    /// Individual backoff charges, model seconds, in execution order. Kept
    /// as terms and left-folded at report time, so that merging per-item or
    /// per-device tallies by concatenation (always in plan/device order)
    /// reproduces the serial `+=` accumulation bit-for-bit — f64 addition
    /// is not associative, partial sums would not be.
    backoff_terms: Vec<f64>,
    device_lost: bool,
    /// `(points, pairs, model seconds)` of the CPU fallback, if it ran.
    cpu: Option<(usize, u64, f64)>,
}

impl RecoveryCounters {
    /// Total recovery backoff in model seconds: the left-fold of the
    /// charge terms in execution order.
    fn backoff_s(&self) -> f64 {
        self.backoff_terms.iter().fold(0.0, |acc, t| acc + t)
    }

    /// Folds another shard's tallies into this one (fleet merge). The
    /// `device_lost` flag becomes "any device lost"; CPU fallback accounting
    /// sums across shards.
    fn merge(&mut self, other: &RecoveryCounters) {
        self.transient_retries += other.transient_retries;
        self.overflow_splits += other.overflow_splits;
        self.counter_retries += other.counter_retries;
        self.transfer_stalls += other.transfer_stalls;
        self.backoff_terms.extend_from_slice(&other.backoff_terms);
        self.device_lost |= other.device_lost;
        if let Some((points, pairs, model_s)) = other.cpu {
            let acc = self.cpu.get_or_insert((0, 0, 0.0));
            acc.0 += points;
            acc.1 += pairs;
            acc.2 += model_s;
        }
    }

    fn into_report(self, batches_salvaged: usize) -> Option<DegradationReport> {
        let clean = self.transient_retries == 0
            && self.overflow_splits == 0
            && self.counter_retries == 0
            && self.transfer_stalls == 0
            && !self.device_lost
            && self.cpu.is_none();
        if clean {
            return None;
        }
        let (points_degraded, cpu_pairs, cpu_model_s) = self.cpu.unwrap_or((0, 0, 0.0));
        Some(DegradationReport {
            batches_salvaged,
            points_degraded,
            cpu_pairs,
            cpu_model_s,
            transient_retries: self.transient_retries,
            overflow_splits: self.overflow_splits,
            counter_retries: self.counter_retries,
            transfer_stalls: self.transfer_stalls,
            backoff_s: self.backoff_s(),
            device_lost: self.device_lost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_join;
    use crate::config::{AccessPattern, Balancing};
    use warpsim::GpuConfig;

    fn skewed_points(n: usize) -> Vec<Point<2>> {
        // Half the points bunched in a dense blob, half spread out.
        let mut pts = Vec::with_capacity(n);
        for i in 0..n / 2 {
            pts.push([
                0.2 + 0.001 * (i % 50) as f32,
                0.2 + 0.0013 * (i % 37) as f32,
            ]);
        }
        for i in n / 2..n {
            pts.push([3.0 + 0.17 * (i % 61) as f32, 2.0 + 0.19 * (i % 53) as f32]);
        }
        pts
    }

    /// A jittered `side`-wide lattice: near-uniform density (every point
    /// has a similar neighbor count), the GPU-favorable workload shape.
    fn lattice_points(n: usize, side: usize) -> Vec<Point<2>> {
        let mut pts = Vec::with_capacity(n);
        for i in 0..n {
            let (r, c) = (i / side, i % side);
            pts.push([
                0.04 * c as f32 + 0.009 * ((i * 7) % 5) as f32,
                0.04 * r as f32 + 0.009 * ((i * 11) % 5) as f32,
            ]);
        }
        pts
    }

    fn reference(pts: &[Point<2>], eps: f32) -> Vec<(u32, u32)> {
        let mut p = brute_force_join(pts, eps);
        p.sort_unstable();
        p
    }

    fn all_variants(eps: f32) -> Vec<SelfJoinConfig> {
        let mut configs = Vec::new();
        for balancing in [
            Balancing::None,
            Balancing::SortByWorkload,
            Balancing::WorkQueue,
        ] {
            for pattern in [
                AccessPattern::FullWindow,
                AccessPattern::Unicomp,
                AccessPattern::LidUnicomp,
            ] {
                for k in [1u32, 8] {
                    configs.push(
                        SelfJoinConfig::new(eps)
                            .with_pattern(pattern)
                            .with_balancing(balancing)
                            .with_k(k),
                    );
                }
            }
        }
        configs
    }

    #[test]
    fn every_variant_matches_brute_force() {
        let pts = skewed_points(120);
        let eps = 0.08;
        let expected = reference(&pts, eps);
        for config in all_variants(eps) {
            let label = config.label();
            let outcome = SelfJoin::new(&pts, config).unwrap().run().unwrap();
            assert_eq!(outcome.result.sorted_pairs(), expected, "variant {label}");
            outcome
                .result
                .validate()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    #[test]
    fn hybrid_matches_gpu_run_for_every_variant_and_split() {
        let pts = skewed_points(120);
        let eps = 0.08;
        let expected = reference(&pts, eps);
        for config in all_variants(eps) {
            let label = config.label();
            let gpu = SelfJoin::new(&pts, config.clone()).unwrap().run().unwrap();
            for fraction in [0.0, 0.5, 1.0] {
                let policy = HybridPolicy::default().with_forced_cpu_fraction(fraction);
                let hybrid = SelfJoin::new(&pts, config.clone())
                    .unwrap()
                    .run_hybrid(&policy)
                    .unwrap();
                assert_eq!(
                    hybrid.result.sorted_pairs(),
                    expected,
                    "variant {label}, fraction {fraction}"
                );
                // The canonical report is split-invariant: same batches,
                // same pipeline schedule, same totals as the GPU run.
                assert_eq!(hybrid.report.num_batches, gpu.report.num_batches);
                assert_eq!(hybrid.report.total_pairs, gpu.report.total_pairs);
                assert_eq!(
                    hybrid.report.pipeline.total_s.to_bits(),
                    gpu.report.pipeline.total_s.to_bits(),
                    "variant {label}, fraction {fraction}"
                );
                assert_eq!(hybrid.report.totals, gpu.report.totals);
                assert!(hybrid.hybrid.makespan_s.is_finite());
            }
        }
    }

    #[test]
    fn hybrid_chosen_cut_beats_both_single_backends_on_skewed_data() {
        // The makespan pin of the co-executor: on a skewed workload the
        // chosen cut's overlapped makespan is no worse than either pure
        // backend under the same cost model. WorkQueue without the balanced
        // queue keeps per-unit workloads descending, so there is a light
        // tail worth offloading.
        let pts = skewed_points(400);
        let config = SelfJoinConfig::new(0.1)
            .with_pattern(AccessPattern::LidUnicomp)
            .with_balancing(Balancing::WorkQueue)
            .with_batching(crate::BatchingConfig {
                max_batches: 16,
                ..crate::BatchingConfig::default()
            });
        let join = SelfJoin::new(&pts, config).unwrap();
        let auto = join.run_hybrid(&HybridPolicy::default()).unwrap();
        let gpu_only = join
            .run_hybrid(&HybridPolicy::default().with_forced_cpu_fraction(0.0))
            .unwrap();
        let cpu_only = join.run_hybrid(&HybridPolicy::cpu_only()).unwrap();
        assert_eq!(gpu_only.hybrid.cut, gpu_only.hybrid.units);
        assert_eq!(cpu_only.hybrid.cut, 0);
        let bound = gpu_only.hybrid.makespan_s.min(cpu_only.hybrid.makespan_s);
        assert!(
            auto.hybrid.makespan_s <= bound + 1e-12,
            "hybrid {} vs min(gpu {}, cpu {})",
            auto.hybrid.makespan_s,
            gpu_only.hybrid.makespan_s,
            cpu_only.hybrid.makespan_s
        );
        assert_eq!(auto.result.sorted_pairs(), gpu_only.result.sorted_pairs());
    }

    #[test]
    fn hybrid_cpu_only_is_the_checked_cpu_result() {
        // ExecMode::Cpu routes through cpu_only(): every unit is computed
        // by the pool and differentially checked against the GPU shadow.
        let pts = skewed_points(150);
        let eps = 0.1;
        let expected = reference(&pts, eps);
        let config = SelfJoinConfig::new(eps).with_balancing(Balancing::SortByWorkload);
        let join = SelfJoin::new(&pts, config).unwrap();
        let outcome = join.run_hybrid(&HybridPolicy::cpu_only()).unwrap();
        assert_eq!(outcome.result.sorted_pairs(), expected);
        assert_eq!(outcome.hybrid.gpu_units, 0);
        assert!(outcome.hybrid.cpu_stats.queries >= pts.len());
        assert!(outcome.hybrid.cpu_model_s > 0.0);
    }

    #[test]
    fn hybrid_jobs_count_does_not_change_the_outcome() {
        let pts = skewed_points(200);
        let config = SelfJoinConfig::new(0.1).with_balancing(Balancing::WorkQueue);
        let join = SelfJoin::new(&pts, config).unwrap();
        let one = join
            .run_hybrid(&HybridPolicy::default().with_forced_cpu_fraction(0.4))
            .unwrap();
        let many = join
            .run_hybrid(
                &HybridPolicy::default()
                    .with_forced_cpu_fraction(0.4)
                    .with_jobs(4),
            )
            .unwrap();
        assert_eq!(one.result.sorted_pairs(), many.result.sorted_pairs());
        assert_eq!(one.hybrid.cut, many.hybrid.cut);
        assert_eq!(
            one.hybrid.cpu_model_s.to_bits(),
            many.hybrid.cpu_model_s.to_bits()
        );
        assert_eq!(
            one.report.pipeline.total_s.to_bits(),
            many.report.pipeline.total_s.to_bits()
        );
    }

    #[test]
    fn batching_splits_and_preserves_results() {
        let pts = skewed_points(200);
        let eps = 0.1;
        let expected = reference(&pts, eps);
        let small_batches = crate::BatchingConfig {
            batch_result_capacity: expected.len() / 3 + 8,
            ..crate::BatchingConfig::default()
        };
        for balancing in [
            Balancing::None,
            Balancing::SortByWorkload,
            Balancing::WorkQueue,
        ] {
            let config = SelfJoinConfig::new(eps)
                .with_balancing(balancing)
                .with_batching(small_batches);
            let outcome = SelfJoin::new(&pts, config).unwrap().run().unwrap();
            assert!(
                outcome.report.num_batches >= 2,
                "{balancing:?}: expected multiple batches, got {}",
                outcome.report.num_batches
            );
            assert_eq!(outcome.result.sorted_pairs(), expected, "{balancing:?}");
            for batch in &outcome.report.batches {
                assert!(batch.pairs <= small_batches.batch_result_capacity);
            }
        }
    }

    #[test]
    fn workqueue_runs_at_least_as_many_batches_as_strided() {
        // The prefix (heaviest-first) estimator is pessimistic → more batches
        // (§III-D).
        let pts = skewed_points(300);
        let eps = 0.1;
        let batching = crate::BatchingConfig {
            batch_result_capacity: 3_000,
            safety_factor: 1.5,
            ..crate::BatchingConfig::default()
        };
        let strided = SelfJoin::new(&pts, SelfJoinConfig::new(eps).with_batching(batching))
            .unwrap()
            .run()
            .unwrap();
        let queued = SelfJoin::new(
            &pts,
            SelfJoinConfig::new(eps)
                .with_balancing(Balancing::WorkQueue)
                .with_batching(batching),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(queued.report.num_batches >= strided.report.num_batches);
    }

    #[test]
    fn workqueue_improves_wee_on_skewed_data() {
        let pts = skewed_points(400);
        let eps = 0.12;
        let base = SelfJoin::new(&pts, SelfJoinConfig::new(eps))
            .unwrap()
            .run()
            .unwrap();
        let wq = SelfJoin::new(
            &pts,
            SelfJoinConfig::new(eps).with_balancing(Balancing::WorkQueue),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(
            wq.report.wee() > base.report.wee(),
            "WORKQUEUE WEE {} should beat baseline WEE {}",
            wq.report.wee(),
            base.report.wee()
        );
    }

    #[test]
    fn invalid_k_is_rejected() {
        let pts = skewed_points(10);
        let config = SelfJoinConfig::new(0.1).with_k(5);
        assert!(matches!(
            SelfJoin::new(&pts, config),
            Err(JoinError::InvalidK(_))
        ));
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let pts: Vec<Point<2>> = vec![];
        assert!(matches!(
            SelfJoin::new(&pts, SelfJoinConfig::new(0.1)),
            Err(JoinError::Grid(_))
        ));
    }

    #[test]
    fn report_invariants() {
        let pts = skewed_points(150);
        let outcome = SelfJoin::new(&pts, SelfJoinConfig::optimized(0.1))
            .unwrap()
            .run()
            .unwrap();
        let r = &outcome.report;
        assert!(r.wee() > 0.0 && r.wee() <= 1.0);
        assert_eq!(r.total_pairs, outcome.result.len());
        assert!(r.response_time_s() >= r.kernel_time_s() - 1e-12);
        assert!(r.distance_calcs() > 0);
        assert_eq!(r.batches.len(), r.num_batches);
        let stats = r.warp_stats().unwrap();
        assert!(stats.count > 0);
    }

    #[test]
    fn balanced_queue_tightens_per_batch_result_spread() {
        let pts = skewed_points(500);
        let eps = 0.15;
        let batching = crate::BatchingConfig {
            batch_result_capacity: 8_000,
            safety_factor: 1.5,
            ..crate::BatchingConfig::default()
        };
        let fixed = SelfJoin::new(
            &pts,
            SelfJoinConfig::new(eps)
                .with_balancing(Balancing::WorkQueue)
                .with_batching(batching),
        )
        .unwrap()
        .run()
        .unwrap();
        let balanced = SelfJoin::new(
            &pts,
            SelfJoinConfig::new(eps)
                .with_balancing(Balancing::WorkQueue)
                .with_batching(crate::BatchingConfig {
                    balanced_queue: true,
                    ..batching
                }),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(balanced.result.same_pairs_as(&fixed.result));
        let spread = |r: &crate::JoinReport| -> f64 {
            let pairs: Vec<f64> = r.batches.iter().map(|b| b.pairs as f64).collect();
            let mean = pairs.iter().sum::<f64>() / pairs.len() as f64;
            if mean == 0.0 {
                return 0.0;
            }
            pairs.iter().copied().fold(f64::MIN, f64::max) / mean
        };
        assert!(
            fixed.report.num_batches >= 2,
            "need several batches for the comparison"
        );
        assert!(
            spread(&balanced.report) <= spread(&fixed.report) + 1e-9,
            "balanced chunking must not widen the per-batch result spread \
             (balanced {:.2} vs fixed {:.2})",
            spread(&balanced.report),
            spread(&fixed.report)
        );
    }

    #[test]
    fn recommended_k_tracks_workload() {
        // Dense duplicate-heavy data → large candidate sets → high k.
        let dense: Vec<Point<2>> = (0..600)
            .map(|i| [0.001 * (i % 10) as f32, 0.001 * (i / 10) as f32])
            .collect();
        let join = SelfJoin::new(&dense, SelfJoinConfig::new(0.5)).unwrap();
        assert_eq!(join.recommended_k(), 8);
        assert!(join.mean_candidates() > 512.0);
        // Sparse data → tiny candidate sets → k = 1.
        let sparse: Vec<Point<2>> = (0..200)
            .map(|i| [10.0 * (i % 20) as f32, 10.0 * (i / 20) as f32])
            .collect();
        let join = SelfJoin::new(&sparse, SelfJoinConfig::new(0.5)).unwrap();
        assert_eq!(join.recommended_k(), 1);
    }

    #[test]
    fn overflow_triggers_replan_with_more_batches() {
        // Give the estimator a hopeless sample fraction so it undercounts,
        // with a buffer too small for the single planned batch: the executor
        // must recover by doubling the batch count.
        let pts = skewed_points(300);
        let eps = 0.12;
        let expected = reference(&pts, eps);
        assert!(!expected.is_empty());
        let config = SelfJoinConfig::new(eps).with_batching(crate::BatchingConfig {
            batch_result_capacity: expected.len() / 4 + 64,
            sample_fraction: 0.005,
            safety_factor: 1.0,
            ..crate::BatchingConfig::default()
        });
        let outcome = SelfJoin::new(&pts, config).unwrap().run().unwrap();
        assert_eq!(outcome.result.sorted_pairs(), expected);
        assert!(outcome.report.num_batches >= 2);
    }

    #[test]
    fn transient_faults_are_retried_to_an_exact_result() {
        let pts = skewed_points(150);
        let eps = 0.1;
        let expected = reference(&pts, eps);
        let plane = warpsim::FaultPlane::new(
            warpsim::FaultSchedule::new()
                .transient_at(0)
                .transient_at(1),
        );
        let config = SelfJoinConfig::new(eps).with_balancing(Balancing::SortByWorkload);
        let outcome = SelfJoin::new(&pts, config)
            .unwrap()
            .with_fault_plane(&plane)
            .run()
            .unwrap();
        assert_eq!(outcome.result.sorted_pairs(), expected);
        assert!(outcome.report.response_time_s() > outcome.report.pipeline.total_s);
        let d = outcome.report.degradation.expect("faulted run must report");
        assert_eq!(d.transient_retries, 2);
        assert!(!d.device_lost);
        assert_eq!(d.points_degraded, 0);
        assert!(d.backoff_s > 0.0);
    }

    #[test]
    fn device_lost_mid_join_degrades_to_exact_cpu_fallback() {
        let pts = skewed_points(200);
        let eps = 0.1;
        let expected = reference(&pts, eps);
        let small_batches = crate::BatchingConfig {
            batch_result_capacity: expected.len() / 3 + 8,
            ..crate::BatchingConfig::default()
        };
        for balancing in [
            Balancing::None,
            Balancing::SortByWorkload,
            Balancing::WorkQueue,
        ] {
            // Lose the device on the second batch so at least one GPU batch
            // is salvaged and the rest complete on the CPU.
            let plane = warpsim::FaultPlane::new(warpsim::FaultSchedule::new().device_lost_at(1));
            let config = SelfJoinConfig::new(eps)
                .with_balancing(balancing)
                .with_batching(small_batches);
            let outcome = SelfJoin::new(&pts, config)
                .unwrap()
                .with_fault_plane(&plane)
                .run()
                .unwrap();
            assert_eq!(outcome.result.sorted_pairs(), expected, "{balancing:?}");
            let d = outcome
                .report
                .degradation
                .expect("degraded run must report");
            assert!(d.device_lost, "{balancing:?}");
            assert_eq!(d.batches_salvaged, 1, "{balancing:?}");
            assert!(d.points_degraded > 0, "{balancing:?}");
            assert!(d.cpu_model_s > 0.0, "{balancing:?}");
        }
    }

    #[test]
    fn device_lost_without_cpu_fallback_surfaces_the_error() {
        let pts = skewed_points(80);
        let plane = warpsim::FaultPlane::new(warpsim::FaultSchedule::new().device_lost_at(0));
        let config = SelfJoinConfig::new(0.1).with_retry(crate::RetryPolicy {
            cpu_fallback: false,
            ..crate::RetryPolicy::default()
        });
        let err = SelfJoin::new(&pts, config)
            .unwrap()
            .with_fault_plane(&plane)
            .run()
            .unwrap_err();
        assert!(matches!(err, JoinError::Launch(LaunchError::DeviceLost(_))));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn counter_bump_is_detected_repaired_and_rerun() {
        let pts = skewed_points(200);
        let eps = 0.1;
        let expected = reference(&pts, eps);
        let small_batches = crate::BatchingConfig {
            batch_result_capacity: expected.len() / 3 + 8,
            ..crate::BatchingConfig::default()
        };
        let plane = warpsim::FaultPlane::new(warpsim::FaultSchedule::new().counter_bump_at(1, 7));
        let config = SelfJoinConfig::new(eps)
            .with_balancing(Balancing::WorkQueue)
            .with_batching(small_batches);
        let outcome = SelfJoin::new(&pts, config)
            .unwrap()
            .with_fault_plane(&plane)
            .run()
            .unwrap();
        assert_eq!(outcome.result.sorted_pairs(), expected);
        let d = outcome.report.degradation.expect("faulted run must report");
        assert_eq!(d.counter_retries, 1);
        assert_eq!(d.points_degraded, 0);
    }

    #[test]
    fn transfer_stall_lengthens_response_but_not_pairs() {
        let pts = skewed_points(120);
        let eps = 0.1;
        let expected = reference(&pts, eps);
        let config = SelfJoinConfig::new(eps);
        let clean = SelfJoin::new(&pts, config.clone()).unwrap().run().unwrap();
        let plane =
            warpsim::FaultPlane::new(warpsim::FaultSchedule::new().transfer_stall_at(0, 0.25));
        let stalled = SelfJoin::new(&pts, config)
            .unwrap()
            .with_fault_plane(&plane)
            .run()
            .unwrap();
        assert_eq!(stalled.result.sorted_pairs(), expected);
        assert!(clean.report.degradation.is_none());
        let d = stalled.report.degradation.expect("stall must be reported");
        assert_eq!(d.transfer_stalls, 1);
        assert!(stalled.report.pipeline.total_s > clean.report.pipeline.total_s + 0.2);
    }

    #[test]
    fn empty_fault_plane_is_bit_identical_to_no_plane() {
        let pts = skewed_points(150);
        let config = SelfJoinConfig::optimized(0.1);
        let clean = SelfJoin::new(&pts, config.clone()).unwrap().run().unwrap();
        let plane = warpsim::FaultPlane::new(warpsim::FaultSchedule::new());
        let faulted = SelfJoin::new(&pts, config)
            .unwrap()
            .with_fault_plane(&plane)
            .run()
            .unwrap();
        assert_eq!(clean.result.sorted_pairs(), faulted.result.sorted_pairs());
        assert_eq!(
            clean.report.response_time_s(),
            faulted.report.response_time_s()
        );
        assert_eq!(clean.report.totals.cycles, faulted.report.totals.cycles);
        assert!(faulted.report.degradation.is_none());
    }

    #[test]
    fn overflow_past_the_split_budget_is_a_typed_terminal_error() {
        // A zero-split budget turns the first overflow into a terminal
        // typed error instead of an endless recovery loop.
        let pts = skewed_points(300);
        let eps = 0.12;
        let expected = reference(&pts, eps);
        let config = SelfJoinConfig::new(eps)
            .with_batching(crate::BatchingConfig {
                batch_result_capacity: expected.len() / 4 + 64,
                sample_fraction: 0.005,
                safety_factor: 1.0,
                ..crate::BatchingConfig::default()
            })
            .with_retry(crate::RetryPolicy {
                max_overflow_splits: 0,
                ..crate::RetryPolicy::default()
            });
        let err = SelfJoin::new(&pts, config).unwrap().run().unwrap_err();
        assert!(matches!(
            err,
            JoinError::Launch(LaunchError::ResultOverflow(_))
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let pts = skewed_points(100);
        let config = SelfJoinConfig::new(0.1).with_balancing(Balancing::SortByWorkload);
        let a = SelfJoin::new(&pts, config.clone()).unwrap().run().unwrap();
        let b = SelfJoin::new(&pts, config).unwrap().run().unwrap();
        assert_eq!(a.result.sorted_pairs(), b.result.sorted_pairs());
        assert_eq!(a.report.response_time_s(), b.report.response_time_s());
        assert_eq!(a.report.wee(), b.report.wee());
    }

    #[test]
    fn small_gpu_config_also_works() {
        let pts = skewed_points(60);
        let config = SelfJoinConfig::optimized(0.1).with_gpu(GpuConfig {
            warp_size: 8,
            block_size: 16,
            ..GpuConfig::small_test()
        });
        let outcome = SelfJoin::new(&pts, config).unwrap().run().unwrap();
        assert_eq!(outcome.result.sorted_pairs(), reference(&pts, 0.1));
    }

    /// Asserts the fleet's canonical outcome is bit-identical to a
    /// single-device run: same pairs in the same production order, same
    /// batches with the same model times, same canonical report.
    fn assert_canonical_match(single: &JoinOutcome, fleet: &crate::FleetOutcome, ctx: &str) {
        assert_eq!(single.result.pairs(), fleet.result.pairs(), "{ctx}: pairs");
        assert_eq!(
            single.report.estimate, fleet.report.estimate,
            "{ctx}: estimate"
        );
        assert_eq!(
            single.report.num_batches, fleet.report.num_batches,
            "{ctx}: num_batches"
        );
        assert_eq!(
            single.report.total_pairs, fleet.report.total_pairs,
            "{ctx}: total_pairs"
        );
        assert_eq!(single.report.totals, fleet.report.totals, "{ctx}: totals");
        assert_eq!(
            single.report.pipeline.total_s.to_bits(),
            fleet.report.pipeline.total_s.to_bits(),
            "{ctx}: pipeline total"
        );
        assert_eq!(
            single.report.response_time_s().to_bits(),
            fleet.report.response_time_s().to_bits(),
            "{ctx}: response time"
        );
        assert_eq!(
            single.report.degradation, fleet.report.degradation,
            "{ctx}: degradation"
        );
        for (i, (a, b)) in single
            .report
            .batches
            .iter()
            .zip(&fleet.report.batches)
            .enumerate()
        {
            assert_eq!(a.pairs, b.pairs, "{ctx}: batch {i} pairs");
            assert_eq!(
                a.kernel_s.to_bits(),
                b.kernel_s.to_bits(),
                "{ctx}: batch {i} kernel"
            );
            assert_eq!(
                a.transfer_s.to_bits(),
                b.transfer_s.to_bits(),
                "{ctx}: batch {i} transfer"
            );
        }
    }

    #[test]
    fn fleet_of_one_is_bit_identical_to_run() {
        let pts = skewed_points(200);
        let eps = 0.1;
        let small_batches = crate::BatchingConfig {
            batch_result_capacity: reference(&pts, eps).len() / 3 + 8,
            ..crate::BatchingConfig::default()
        };
        for balancing in [
            Balancing::None,
            Balancing::SortByWorkload,
            Balancing::WorkQueue,
        ] {
            let config = SelfJoinConfig::new(eps)
                .with_balancing(balancing)
                .with_batching(small_batches);
            let single = SelfJoin::new(&pts, config.clone()).unwrap().run().unwrap();
            let join = SelfJoin::new(&pts, config.clone()).unwrap();
            let fleet = warpsim::DeviceFleet::homogeneous(1, config.gpu);
            let sharded = join
                .run_on_fleet(&fleet, crate::ShardStrategy::WorkloadAware)
                .unwrap();
            assert_canonical_match(&single, &sharded, &format!("{balancing:?}"));
            assert_eq!(sharded.fleet.shards.len(), 1);
            assert_eq!(
                sharded.fleet.shards[0].batches, single.report.num_batches,
                "{balancing:?}: the only shard holds the whole plan"
            );
        }
    }

    #[test]
    fn fleet_canonical_report_is_device_count_invariant() {
        let pts = skewed_points(300);
        let eps = 0.12;
        let small_batches = crate::BatchingConfig {
            batch_result_capacity: reference(&pts, eps).len() / 6 + 8,
            ..crate::BatchingConfig::default()
        };
        for balancing in [
            Balancing::None,
            Balancing::SortByWorkload,
            Balancing::WorkQueue,
        ] {
            for strategy in [
                crate::ShardStrategy::WorkloadAware,
                crate::ShardStrategy::EqualCount,
            ] {
                let config = SelfJoinConfig::new(eps)
                    .with_balancing(balancing)
                    .with_batching(small_batches);
                let single = SelfJoin::new(&pts, config.clone()).unwrap().run().unwrap();
                assert!(single.report.num_batches >= 4, "want several units");
                let join = SelfJoin::new(&pts, config.clone()).unwrap();
                let fleet = warpsim::DeviceFleet::homogeneous(4, config.gpu);
                let sharded = join.run_on_fleet(&fleet, strategy).unwrap();
                let ctx = format!("{balancing:?}/{}", strategy.label());
                assert_canonical_match(&single, &sharded, &ctx);
                assert_eq!(sharded.fleet.shards.len(), 4, "{ctx}");
                // Shards tile the plan: per-shard batch and pair counts sum
                // to the canonical totals (splits included).
                let shard_batches: usize = sharded.fleet.shards.iter().map(|s| s.batches).sum();
                let shard_pairs: usize = sharded.fleet.shards.iter().map(|s| s.pairs).sum();
                assert_eq!(shard_batches, sharded.report.num_batches, "{ctx}");
                assert_eq!(shard_pairs, sharded.report.total_pairs, "{ctx}");
                // Every shard runs no longer than the fleet makespan, and the
                // makespan is no longer than the serialized canonical time.
                for s in &sharded.fleet.shards {
                    assert!(
                        s.response_time_s <= sharded.fleet.makespan_s + 1e-12,
                        "{ctx}"
                    );
                }
                assert!(
                    sharded.fleet.makespan_s <= sharded.report.response_time_s() + 1e-12,
                    "{ctx}: makespan {} vs canonical {}",
                    sharded.fleet.makespan_s,
                    sharded.report.response_time_s()
                );
            }
        }
    }

    #[test]
    fn fleet_device_loss_degrades_only_that_shard_under_degrade_policy() {
        // RecoveryPolicy::degrade() reproduces the pre-failover behaviour:
        // the lost shard finishes its own remainder on the CPU.
        let pts = skewed_points(240);
        let eps = 0.1;
        let expected = reference(&pts, eps);
        let small_batches = crate::BatchingConfig {
            batch_result_capacity: expected.len() / 6 + 8,
            ..crate::BatchingConfig::default()
        };
        for balancing in [
            Balancing::None,
            Balancing::SortByWorkload,
            Balancing::WorkQueue,
        ] {
            let config = SelfJoinConfig::new(eps)
                .with_balancing(balancing)
                .with_batching(small_batches)
                .with_recovery(crate::RecoveryPolicy::degrade());
            let join = SelfJoin::new(&pts, config.clone()).unwrap();
            let fleet = warpsim::DeviceFleet::homogeneous(3, config.gpu)
                .with_fault_schedule(1, warpsim::FaultSchedule::new().device_lost_at(0));
            let outcome = join
                .run_on_fleet(&fleet, crate::ShardStrategy::WorkloadAware)
                .unwrap();
            // The merged join is still exact.
            assert_eq!(outcome.result.sorted_pairs(), expected, "{balancing:?}");
            assert_eq!(fleet.lost_devices(), 1, "{balancing:?}");
            assert!(!outcome.fleet.recovery.intervened(), "{balancing:?}");
            // Only device 1's shard reports a degradation.
            let lost = &outcome.fleet.shards[1];
            let d = lost.degradation.as_ref().expect("lost shard must report");
            assert!(d.device_lost, "{balancing:?}");
            assert!(d.points_degraded > 0, "{balancing:?}");
            for s in [&outcome.fleet.shards[0], &outcome.fleet.shards[2]] {
                assert!(
                    s.degradation.is_none(),
                    "{balancing:?}: clean shard {} must not degrade",
                    s.device
                );
            }
            // The canonical report carries the merged degradation.
            let merged = outcome.report.degradation.as_ref().unwrap();
            assert!(merged.device_lost, "{balancing:?}");
            assert_eq!(merged.points_degraded, d.points_degraded, "{balancing:?}");
        }
    }

    #[test]
    fn fleet_device_loss_reshards_onto_survivors() {
        // Default policy: the lost device's unexecuted units are re-cut
        // workload-aware across the survivors and the merged result stays
        // bit-identical to the clean fleet run — no CPU degradation at all.
        let pts = skewed_points(240);
        let eps = 0.1;
        let expected = reference(&pts, eps);
        let small_batches = crate::BatchingConfig {
            batch_result_capacity: expected.len() / 6 + 8,
            ..crate::BatchingConfig::default()
        };
        for balancing in [
            Balancing::None,
            Balancing::SortByWorkload,
            Balancing::WorkQueue,
        ] {
            let config = SelfJoinConfig::new(eps)
                .with_balancing(balancing)
                .with_batching(small_batches);
            let clean = SelfJoin::new(&pts, config.clone())
                .unwrap()
                .run_on_fleet(
                    &warpsim::DeviceFleet::homogeneous(4, config.gpu),
                    crate::ShardStrategy::WorkloadAware,
                )
                .unwrap();
            let join = SelfJoin::new(&pts, config.clone()).unwrap();
            let fleet = warpsim::DeviceFleet::homogeneous(4, config.gpu)
                .with_fault_schedule(1, warpsim::FaultSchedule::new().device_lost_at(0));
            let outcome = join
                .run_on_fleet(&fleet, crate::ShardStrategy::WorkloadAware)
                .unwrap();
            // Bit-identical to the clean run: same pair production order,
            // not just the same set.
            assert_eq!(
                outcome.result.pairs(),
                clean.result.pairs(),
                "{balancing:?}"
            );
            assert_eq!(outcome.result.sorted_pairs(), expected, "{balancing:?}");
            let rec = &outcome.fleet.recovery;
            assert!(rec.reshard_rounds >= 1, "{balancing:?}");
            assert_eq!(rec.devices_lost, 1, "{balancing:?}");
            assert!(rec.reassigned_units >= 1, "{balancing:?}");
            assert_eq!(rec.cpu_last_resort_points, 0, "{balancing:?}");
            assert!(
                outcome.report.degradation.is_none()
                    || !outcome
                        .report
                        .degradation
                        .as_ref()
                        .unwrap()
                        .cpu_fallback_ran(),
                "{balancing:?}: reshard must not fall back to the CPU"
            );
            // Accounting: the lost shard handed units out, survivors took
            // them in.
            assert!(outcome.fleet.shards[1].reassigned_out >= 1, "{balancing:?}");
            let taken: usize = outcome.fleet.shards.iter().map(|s| s.reassigned_in).sum();
            assert_eq!(
                taken, outcome.fleet.shards[1].reassigned_out,
                "{balancing:?}"
            );
            assert!(
                rec.health
                    .iter()
                    .any(|h| h.state == crate::DeviceHealth::Lost && h.device == 1),
                "{balancing:?}"
            );
        }
    }

    #[test]
    fn fleet_reshard_beats_cpu_degradation_makespan() {
        // The point of failover: at a dataset size where the GPU's
        // parallelism is actually exercised (hundreds of queries per
        // launch, compute-bound on a high-bandwidth link), finishing the
        // lost shard's work on the survivors beats finishing it on the
        // host. (On tiny or transfer-bound workloads the modeled host can
        // win — the GPU sits mostly idle — so this property is asserted in
        // the paper's GPU-favorable regime.)
        let pts = lattice_points(9800, 99);
        let eps = 0.1;
        let expected = reference(&pts, eps);
        let small_batches = crate::BatchingConfig {
            batch_result_capacity: expected.len() / 12 + 8,
            transfer_bandwidth: 80.0e9,
            ..crate::BatchingConfig::default()
        };
        let config = SelfJoinConfig::new(eps)
            .with_balancing(Balancing::WorkQueue)
            .with_batching(small_batches);
        let run = |recovery: crate::RecoveryPolicy| {
            let cfg = config.clone().with_recovery(recovery);
            let fleet = warpsim::DeviceFleet::homogeneous(4, cfg.gpu)
                .with_fault_schedule(1, warpsim::FaultSchedule::new().device_lost_at(0));
            SelfJoin::new(&pts, cfg)
                .unwrap()
                .run_on_fleet(&fleet, crate::ShardStrategy::WorkloadAware)
                .unwrap()
        };
        let resharded = run(crate::RecoveryPolicy::reshard());
        let degraded = run(crate::RecoveryPolicy::degrade());
        assert_eq!(resharded.result.sorted_pairs(), expected);
        assert_eq!(
            resharded.result.sorted_pairs(),
            degraded.result.sorted_pairs()
        );
        assert!(resharded.fleet.recovery.reshard_rounds >= 1);
        assert!(degraded.fleet.recovery.reshard_rounds == 0);
        assert!(
            resharded.fleet.makespan_s < degraded.fleet.makespan_s,
            "recovered makespan {} must beat degraded {}",
            resharded.fleet.makespan_s,
            degraded.fleet.makespan_s
        );
    }

    #[test]
    fn fleet_all_devices_lost_falls_back_to_cpu_last_resort() {
        let pts = skewed_points(160);
        let eps = 0.1;
        let expected = reference(&pts, eps);
        let config = SelfJoinConfig::new(eps).with_balancing(Balancing::WorkQueue);
        let join = SelfJoin::new(&pts, config.clone()).unwrap();
        let mut fleet = warpsim::DeviceFleet::homogeneous(2, config.gpu);
        for d in 0..2 {
            fleet = fleet.with_fault_schedule(d, warpsim::FaultSchedule::new().device_lost_at(0));
        }
        let outcome = join
            .run_on_fleet(&fleet, crate::ShardStrategy::WorkloadAware)
            .unwrap();
        assert_eq!(outcome.result.sorted_pairs(), expected);
        let rec = &outcome.fleet.recovery;
        assert_eq!(rec.devices_lost, 2);
        assert!(rec.cpu_last_resort_points > 0);
        assert!(rec.cpu_last_resort_model_s > 0.0);
        // The serial host tail extends the makespan.
        assert!(outcome.fleet.makespan_s >= rec.cpu_last_resort_model_s);
        let merged = outcome.report.degradation.as_ref().unwrap();
        assert!(merged.cpu_fallback_ran());
    }

    #[test]
    fn fleet_without_cpu_last_resort_surfaces_the_launch_error() {
        let pts = skewed_points(120);
        let config = SelfJoinConfig::new(0.1)
            .with_recovery(crate::RecoveryPolicy::reshard().with_cpu_last_resort(false));
        let join = SelfJoin::new(&pts, config.clone()).unwrap();
        let mut fleet = warpsim::DeviceFleet::homogeneous(2, config.gpu);
        for d in 0..2 {
            fleet = fleet.with_fault_schedule(d, warpsim::FaultSchedule::new().device_lost_at(0));
        }
        let err = join
            .run_on_fleet(&fleet, crate::ShardStrategy::WorkloadAware)
            .unwrap_err();
        assert!(
            matches!(err, JoinError::Launch(warpsim::LaunchError::DeviceLost(_))),
            "{err}"
        );
    }

    #[test]
    fn fleet_straggler_rebalance_moves_tail_units_and_stays_exact() {
        // Give device 0 heavy transient backoff so its projected response
        // dwarfs the fleet median; the policy must cancel its unstarted tail
        // and re-home it without changing the pair set.
        let pts = skewed_points(240);
        let eps = 0.1;
        let expected = reference(&pts, eps);
        let small_batches = crate::BatchingConfig {
            batch_result_capacity: expected.len() / 6 + 8,
            ..crate::BatchingConfig::default()
        };
        let config = SelfJoinConfig::new(eps)
            .with_balancing(Balancing::SortByWorkload)
            .with_batching(small_batches)
            .with_recovery(crate::RecoveryPolicy::reshard().with_straggler_threshold(1.05));
        let join = SelfJoin::new(&pts, config.clone()).unwrap();
        let mut schedule = warpsim::FaultSchedule::new();
        for launch in 0..4 {
            schedule = schedule.transient_at(launch);
        }
        let fleet =
            warpsim::DeviceFleet::homogeneous(3, config.gpu).with_fault_schedule(0, schedule);
        let outcome = join
            .run_on_fleet(&fleet, crate::ShardStrategy::EqualCount)
            .unwrap();
        assert_eq!(outcome.result.sorted_pairs(), expected);
        let rec = &outcome.fleet.recovery;
        if rec.straggler_rebalances > 0 {
            assert!(rec.reassigned_units >= 1);
            assert!(rec
                .health
                .iter()
                .any(|h| h.state == crate::DeviceHealth::Straggler));
        }
    }

    #[test]
    fn fleet_with_more_devices_than_units_stays_exact() {
        let pts = skewed_points(80);
        let eps = 0.1;
        let config = SelfJoinConfig::optimized(eps);
        let single = SelfJoin::new(&pts, config.clone()).unwrap().run().unwrap();
        let join = SelfJoin::new(&pts, config.clone()).unwrap();
        let fleet = warpsim::DeviceFleet::homogeneous(8, config.gpu);
        let sharded = join
            .run_on_fleet(&fleet, crate::ShardStrategy::WorkloadAware)
            .unwrap();
        assert_canonical_match(&single, &sharded, "8 devices, few units");
        assert_eq!(sharded.fleet.shards.len(), 8);
        let idle = sharded
            .fleet
            .shards
            .iter()
            .filter(|s| s.units.is_empty())
            .count();
        assert!(idle > 0, "some devices must sit idle");
        for s in sharded.fleet.shards.iter().filter(|s| s.units.is_empty()) {
            assert_eq!(s.batches, 0);
            assert_eq!(s.pairs, 0);
            assert_eq!(s.response_time_s, 0.0);
        }
    }

    #[test]
    fn fleet_configuration_errors_are_typed() {
        let pts = skewed_points(40);
        let config = SelfJoinConfig::new(0.1);
        let join = SelfJoin::new(&pts, config.clone()).unwrap();
        let empty = warpsim::DeviceFleet::homogeneous(0, config.gpu);
        let err = join
            .run_on_fleet(&empty, crate::ShardStrategy::WorkloadAware)
            .unwrap_err();
        assert!(matches!(err, JoinError::Fleet(_)), "{err}");
        let narrow = warpsim::DeviceFleet::homogeneous(
            2,
            GpuConfig {
                warp_size: 8,
                block_size: 16,
                ..GpuConfig::small_test()
            },
        );
        let err = join
            .run_on_fleet(&narrow, crate::ShardStrategy::WorkloadAware)
            .unwrap_err();
        assert!(
            matches!(&err, JoinError::Fleet(msg) if msg.contains("warp size")),
            "{err}"
        );
    }
}
