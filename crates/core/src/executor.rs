//! Host-side orchestration: index → estimate → batch plan → kernels → result.

use std::cell::Cell;

use epsgrid::{GridBuildError, GridIndex, Point};
use sj_telemetry::{Event, Stopwatch, Telemetry};
use warpsim::{
    launch_with, BatchTiming, CoopGroups, DeviceBuffer, DeviceCounter, LaunchError, LaunchOptions,
    LaunchReport, PipelineReport, StreamPipeline, WarpExecution, WarpStatsSummary,
};

use crate::batching::{
    buffer_capacity_for, estimate_prefix, estimate_strided, num_batches_for, plan_queue,
    plan_queue_balanced, plan_strided, BatchPlan, ResultEstimate,
};
use crate::config::{Balancing, SelfJoinConfig};
use crate::kernels::{Assignment, JoinKernelSource, ResolvedPatterns};
use crate::result::ResultSet;
use crate::workload::WorkloadProfile;

/// Errors from configuring or running a self-join.
#[derive(Debug)]
pub enum JoinError {
    /// The grid index could not be built.
    Grid(GridBuildError),
    /// `k` does not partition the warp size.
    InvalidK(warpsim::coop::CoopError),
    /// A batch kernel overflowed its result buffer — the batch plan failed
    /// its core guarantee (e.g. the sample under-estimated badly).
    Launch(LaunchError),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Grid(e) => write!(f, "grid index construction failed: {e}"),
            JoinError::InvalidK(e) => write!(f, "invalid thread granularity: {e}"),
            JoinError::Launch(e) => write!(f, "kernel launch failed: {e}"),
        }
    }
}

impl std::error::Error for JoinError {}

impl From<GridBuildError> for JoinError {
    fn from(e: GridBuildError) -> Self {
        JoinError::Grid(e)
    }
}

/// Per-batch execution record.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The kernel launch outcome.
    pub launch: LaunchReport,
    /// Result pairs produced by this batch.
    pub pairs: usize,
    /// Kernel time in model seconds.
    pub kernel_s: f64,
    /// Device-to-host transfer time in model seconds.
    pub transfer_s: f64,
}

/// Aggregate report of a full self-join execution.
#[derive(Debug, Clone)]
pub struct JoinReport {
    /// Result-size estimate that sized the batch plan.
    pub estimate: ResultEstimate,
    /// Number of batches executed.
    pub num_batches: usize,
    /// Per-batch records.
    pub batches: Vec<BatchReport>,
    /// Multi-stream pipeline schedule of the batches.
    pub pipeline: PipelineReport,
    /// Accumulated warp counters across all batches.
    pub totals: WarpExecution,
    /// Total result pairs.
    pub total_pairs: usize,
}

impl JoinReport {
    /// Warp execution efficiency across the whole join, in `[0, 1]`.
    pub fn wee(&self) -> f64 {
        self.totals.efficiency()
    }

    /// End-to-end response time in model seconds (kernels + exposed
    /// transfers under the stream pipeline).
    pub fn response_time_s(&self) -> f64 {
        self.pipeline.total_s
    }

    /// Sum of kernel times (no transfers), model seconds.
    pub fn kernel_time_s(&self) -> f64 {
        self.batches.iter().map(|b| b.kernel_s).sum()
    }

    /// Total distance calculations performed.
    pub fn distance_calcs(&self) -> u64 {
        self.totals.lane_ops_by_kind[warpsim::OpKind::Distance.index()]
    }

    /// Per-warp duration summary pooled over all batches.
    pub fn warp_stats(&self) -> Option<WarpStatsSummary> {
        let all: Vec<u64> = self
            .batches
            .iter()
            .flat_map(|b| b.launch.warp_cycles.iter().copied())
            .collect();
        WarpStatsSummary::from_durations(&all)
    }
}

/// A join's outcome: the pair set and the execution report.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// The self-join result.
    pub result: ResultSet,
    /// Timing and efficiency report.
    pub report: JoinReport,
}

/// A configured self-join over a dataset.
///
/// Construction builds the ε-grid index and resolves the access pattern;
/// [`SelfJoin::run`] executes the batched kernels on the simulated GPU.
pub struct SelfJoin<'a, const N: usize> {
    points: &'a [Point<N>],
    config: SelfJoinConfig,
    grid: GridIndex<N>,
    resolved: ResolvedPatterns,
    profile: Option<WorkloadProfile>,
    telemetry: &'a dyn Telemetry,
    index_build_ns: u64,
    profile_ns: u64,
}

impl<const N: usize> std::fmt::Debug for SelfJoin<'_, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelfJoin")
            .field("points", &self.points.len())
            .field("config", &self.config)
            .field("grid", &self.grid)
            .field("resolved", &self.resolved)
            .field("profile", &self.profile)
            .finish_non_exhaustive()
    }
}

impl<'a, const N: usize> SelfJoin<'a, N> {
    /// Indexes `points` and prepares the kernels described by `config`.
    pub fn new(points: &'a [Point<N>], config: SelfJoinConfig) -> Result<Self, JoinError> {
        CoopGroups::new(config.gpu.warp_size, config.k).map_err(JoinError::InvalidK)?;
        let sw_index = Stopwatch::start();
        let grid = GridIndex::build(points, config.epsilon)?;
        let resolved = ResolvedPatterns::compute(&grid, config.pattern);
        let index_build_ns = sw_index.elapsed_ns();
        let sw_profile = Stopwatch::start();
        let profile = match config.balancing {
            Balancing::None => None,
            Balancing::SortByWorkload | Balancing::WorkQueue => {
                Some(WorkloadProfile::compute(&grid))
            }
        };
        let profile_ns = sw_profile.elapsed_ns();
        Ok(Self {
            points,
            config,
            grid,
            resolved,
            profile,
            telemetry: &sj_telemetry::NULL,
            index_build_ns,
            profile_ns,
        })
    }

    /// Attaches a telemetry sink receiving the executor's phase timers,
    /// estimator-accuracy and overflow-recovery events, plus the per-launch
    /// spans from `warpsim`. Observation only: the sink never changes pair
    /// sets, cycle counts, or model seconds.
    pub fn with_telemetry(mut self, telemetry: &'a dyn Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The grid index (for inspection).
    pub fn grid(&self) -> &GridIndex<N> {
        &self.grid
    }

    /// The configuration.
    pub fn config(&self) -> &SelfJoinConfig {
        &self.config
    }

    /// The workload profile, if the balancing strategy required one.
    pub fn profile(&self) -> Option<&WorkloadProfile> {
        self.profile.as_ref()
    }

    /// Mean candidate count per query point (the average refine-step
    /// workload).
    pub fn mean_candidates(&self) -> f64 {
        let total: u128 = (0..self.grid.num_cells())
            .map(|ci| {
                self.grid.window_candidate_count(ci) as u128
                    * self.grid.cell_points(ci).len() as u128
            })
            .sum();
        total as f64 / self.grid.num_points() as f64
    }

    /// Recommends a thread granularity `k` from the dataset's workload.
    ///
    /// The paper evaluates only `k = 1` vs `k = 8` and observes that high
    /// granularity pays off when query points carry large candidate sets
    /// (Expo2D at large ε) but wastes warps when per-point work is small
    /// (Unif6D at any ε). This heuristic encodes that observation: the
    /// recommended `k` grows with the mean candidate count so that each
    /// lane still keeps a few dozen distance calculations.
    pub fn recommended_k(&self) -> u32 {
        let mean = self.mean_candidates();
        if mean < 64.0 {
            1
        } else if mean < 192.0 {
            2
        } else if mean < 512.0 {
            4
        } else {
            8
        }
    }

    /// Builds the batch plan (exposed for tests and benches).
    pub fn plan(&self) -> (ResultEstimate, BatchPlan) {
        self.plan_with(1)
    }

    /// Builds the batch plan with the batch count scaled by `multiplier`
    /// (used when a previous attempt overflowed the result buffer).
    fn plan_with(&self, multiplier: usize) -> (ResultEstimate, BatchPlan) {
        let c = &self.config;
        match c.balancing {
            Balancing::None | Balancing::SortByWorkload => {
                let estimate = estimate_strided(
                    &self.grid,
                    self.points,
                    c.epsilon,
                    c.batching.sample_fraction,
                );
                let nb = num_batches_for(&estimate, &c.batching) * multiplier;
                let plan = plan_strided(self.points.len(), nb, self.profile.as_ref());
                (estimate, plan)
            }
            Balancing::WorkQueue => {
                let profile = self
                    .profile
                    .as_ref()
                    .expect("WorkQueue always has a profile");
                let order = profile.sorted_dataset(&self.grid);
                let estimate = estimate_prefix(
                    &self.grid,
                    self.points,
                    c.epsilon,
                    c.batching.sample_fraction,
                    &order,
                );
                let nb = num_batches_for(&estimate, &c.batching) * multiplier;
                let plan = if c.batching.balanced_queue {
                    plan_queue_balanced(order, profile.per_point(), nb)
                } else {
                    plan_queue(order, nb)
                };
                (estimate, plan)
            }
        }
    }

    /// Executes the join.
    ///
    /// If a batch overflows the result buffer (the sampled estimate was too
    /// low), the join is re-planned with twice as many batches and retried —
    /// the host-side recovery the batching scheme needs when the 1 % sample
    /// misses a dense region.
    pub fn run(&self) -> Result<JoinOutcome, JoinError> {
        let mut multiplier = 1;
        loop {
            match self.run_once(multiplier) {
                Err(JoinError::Launch(LaunchError::ResultOverflow(_)))
                    if multiplier < 64 && self.config.batching.batch_result_capacity > 0 =>
                {
                    if self.telemetry.is_enabled() {
                        self.telemetry.record(
                            Event::new("executor", "overflow_recovery")
                                .u64("failed_multiplier", multiplier as u64)
                                .u64("retry_multiplier", (multiplier * 2) as u64),
                        );
                    }
                    multiplier *= 2;
                }
                other => return other,
            }
        }
    }

    fn run_once(&self, multiplier: usize) -> Result<JoinOutcome, JoinError> {
        let telemetry_on = self.telemetry.is_enabled();
        if telemetry_on && multiplier == 1 {
            // Index build and workload profiling happened in `new()`; their
            // host durations were captured there and are reported once.
            self.telemetry.record(
                Event::new("executor.phase", "index_build")
                    .u64("points", self.grid.num_points() as u64)
                    .u64("cells", self.grid.num_cells() as u64)
                    .u64("host_ns", self.index_build_ns),
            );
            self.telemetry.record(
                Event::new("executor.phase", "workload_profile")
                    .bool("profiled", self.profile.is_some())
                    .str("balancing", format!("{:?}", self.config.balancing))
                    .u64("host_ns", self.profile_ns),
            );
        }
        let sw_plan = Stopwatch::start();
        let (estimate, plan) = self.plan_with(multiplier);
        if telemetry_on {
            self.telemetry.record(
                Event::new("executor.phase", "estimate_and_plan")
                    .u64("multiplier", multiplier as u64)
                    .u64("sampled_points", estimate.sampled_points as u64)
                    .u64("sampled_pairs", estimate.sampled_pairs)
                    .u64("estimated_total", estimate.estimated_total)
                    .u64("num_batches", plan.num_batches() as u64)
                    .u64("host_ns", sw_plan.elapsed_ns()),
            );
        }
        let c = &self.config;
        let issue_order = c.issue_order();
        let mut result = ResultSet::default();
        let mut batch_reports: Vec<BatchReport> = Vec::with_capacity(plan.num_batches());
        let mut totals = WarpExecution {
            warp_size: c.gpu.warp_size,
            ..WarpExecution::default()
        };
        // With the device-saturation floor enabled, the pinned buffer grows
        // to fit the fewer, larger batches; otherwise it is exactly `b_s`.
        let capacity = if c.batching.max_batches > 0 {
            buffer_capacity_for(&estimate, plan.num_batches(), &c.batching)
        } else {
            c.batching.batch_result_capacity
        };
        let mut buffer = DeviceBuffer::with_capacity(capacity);
        let batch_index = Cell::new(0u64);
        let gather_ns = Cell::new(0u64);

        let run_batch = |assignment: Assignment<'_>,
                         num_groups: usize,
                         buffer: &mut DeviceBuffer<(u32, u32)>,
                         result: &mut ResultSet,
                         totals: &mut WarpExecution|
         -> Result<BatchReport, JoinError> {
            let source = JoinKernelSource {
                grid: &self.grid,
                points: self.points,
                resolved: &self.resolved,
                epsilon: c.epsilon,
                k: c.k,
                warp_size: c.gpu.warp_size,
                cost: c.gpu.cost,
                assignment,
                num_groups,
            };
            let opts = LaunchOptions::with_telemetry(self.telemetry);
            let launch_report = launch_with(&c.gpu, &source, issue_order, buffer, &opts)
                .map_err(JoinError::Launch)?;
            let pairs = buffer.len();
            let sw_gather = Stopwatch::start();
            result.extend(buffer.as_slice());
            buffer.clear();
            gather_ns.set(gather_ns.get() + sw_gather.elapsed_ns());
            totals.accumulate(&launch_report.totals);
            let kernel_s = launch_report.elapsed_seconds();
            let transfer_s = c.batching.transfer_seconds(pairs);
            if telemetry_on {
                self.telemetry.record(
                    Event::new("executor", "batch")
                        .u64("index", batch_index.get())
                        .u64("pairs", pairs as u64)
                        .f64("kernel_model_s", kernel_s)
                        .f64("transfer_model_s", transfer_s),
                );
            }
            batch_index.set(batch_index.get() + 1);
            Ok(BatchReport {
                launch: launch_report,
                pairs,
                kernel_s,
                transfer_s,
            })
        };

        match &plan {
            BatchPlan::Strided { batches } => {
                for queries in batches {
                    let report = run_batch(
                        Assignment::Static { queries },
                        queries.len(),
                        &mut buffer,
                        &mut result,
                        &mut totals,
                    )?;
                    batch_reports.push(report);
                }
            }
            BatchPlan::Queue { order, chunks } => {
                let counter = DeviceCounter::new();
                let limit = order.len() as u64;
                for chunk in chunks {
                    if chunk.is_empty() {
                        continue;
                    }
                    let report = run_batch(
                        Assignment::Queue {
                            order,
                            counter: &counter,
                            limit,
                        },
                        chunk.len(),
                        &mut buffer,
                        &mut result,
                        &mut totals,
                    )?;
                    batch_reports.push(report);
                }
                debug_assert_eq!(counter.load(), limit, "queue must drain exactly");
            }
        }

        let timings: Vec<BatchTiming> = batch_reports
            .iter()
            .map(|b| BatchTiming {
                kernel_s: b.kernel_s,
                transfer_s: b.transfer_s,
            })
            .collect();
        let pipeline = StreamPipeline::new(c.batching.num_streams).schedule(&timings);
        let total_pairs = result.len();
        if telemetry_on {
            self.telemetry
                .record(Event::new("executor.phase", "gather").u64("host_ns", gather_ns.get()));
            // How well the 1 % sample predicted the true result size — the
            // quantity that decides whether the batch plan over- or
            // under-provisions the result buffers (§III-D).
            let ratio = if total_pairs > 0 {
                estimate.estimated_total as f64 / total_pairs as f64
            } else {
                f64::NAN
            };
            self.telemetry.record(
                Event::new("executor", "estimator_accuracy")
                    .u64("estimated_total", estimate.estimated_total)
                    .u64("actual_total", total_pairs as u64)
                    .f64("estimate_over_actual", ratio),
            );
            self.telemetry.record(
                Event::new("executor", "join_summary")
                    .str("config", c.label())
                    .u64("num_batches", batch_reports.len() as u64)
                    .u64("total_pairs", total_pairs as u64)
                    .f64("response_model_s", pipeline.total_s)
                    .f64("wee", totals.efficiency())
                    .u64(
                        "distance_calcs",
                        totals.lane_ops_by_kind[warpsim::OpKind::Distance.index()],
                    ),
            );
        }
        Ok(JoinOutcome {
            result,
            report: JoinReport {
                estimate,
                num_batches: batch_reports.len(),
                batches: batch_reports,
                pipeline,
                totals,
                total_pairs,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_join;
    use crate::config::{AccessPattern, Balancing};
    use warpsim::GpuConfig;

    fn skewed_points(n: usize) -> Vec<Point<2>> {
        // Half the points bunched in a dense blob, half spread out.
        let mut pts = Vec::with_capacity(n);
        for i in 0..n / 2 {
            pts.push([
                0.2 + 0.001 * (i % 50) as f32,
                0.2 + 0.0013 * (i % 37) as f32,
            ]);
        }
        for i in n / 2..n {
            pts.push([3.0 + 0.17 * (i % 61) as f32, 2.0 + 0.19 * (i % 53) as f32]);
        }
        pts
    }

    fn reference(pts: &[Point<2>], eps: f32) -> Vec<(u32, u32)> {
        let mut p = brute_force_join(pts, eps);
        p.sort_unstable();
        p
    }

    fn all_variants(eps: f32) -> Vec<SelfJoinConfig> {
        let mut configs = Vec::new();
        for balancing in [
            Balancing::None,
            Balancing::SortByWorkload,
            Balancing::WorkQueue,
        ] {
            for pattern in [
                AccessPattern::FullWindow,
                AccessPattern::Unicomp,
                AccessPattern::LidUnicomp,
            ] {
                for k in [1u32, 8] {
                    configs.push(
                        SelfJoinConfig::new(eps)
                            .with_pattern(pattern)
                            .with_balancing(balancing)
                            .with_k(k),
                    );
                }
            }
        }
        configs
    }

    #[test]
    fn every_variant_matches_brute_force() {
        let pts = skewed_points(120);
        let eps = 0.08;
        let expected = reference(&pts, eps);
        for config in all_variants(eps) {
            let label = config.label();
            let outcome = SelfJoin::new(&pts, config).unwrap().run().unwrap();
            assert_eq!(outcome.result.sorted_pairs(), expected, "variant {label}");
            outcome
                .result
                .validate()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    #[test]
    fn batching_splits_and_preserves_results() {
        let pts = skewed_points(200);
        let eps = 0.1;
        let expected = reference(&pts, eps);
        let small_batches = crate::BatchingConfig {
            batch_result_capacity: expected.len() / 3 + 8,
            ..crate::BatchingConfig::default()
        };
        for balancing in [
            Balancing::None,
            Balancing::SortByWorkload,
            Balancing::WorkQueue,
        ] {
            let config = SelfJoinConfig::new(eps)
                .with_balancing(balancing)
                .with_batching(small_batches);
            let outcome = SelfJoin::new(&pts, config).unwrap().run().unwrap();
            assert!(
                outcome.report.num_batches >= 2,
                "{balancing:?}: expected multiple batches, got {}",
                outcome.report.num_batches
            );
            assert_eq!(outcome.result.sorted_pairs(), expected, "{balancing:?}");
            for batch in &outcome.report.batches {
                assert!(batch.pairs <= small_batches.batch_result_capacity);
            }
        }
    }

    #[test]
    fn workqueue_runs_at_least_as_many_batches_as_strided() {
        // The prefix (heaviest-first) estimator is pessimistic → more batches
        // (§III-D).
        let pts = skewed_points(300);
        let eps = 0.1;
        let batching = crate::BatchingConfig {
            batch_result_capacity: 3_000,
            safety_factor: 1.5,
            ..crate::BatchingConfig::default()
        };
        let strided = SelfJoin::new(&pts, SelfJoinConfig::new(eps).with_batching(batching))
            .unwrap()
            .run()
            .unwrap();
        let queued = SelfJoin::new(
            &pts,
            SelfJoinConfig::new(eps)
                .with_balancing(Balancing::WorkQueue)
                .with_batching(batching),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(queued.report.num_batches >= strided.report.num_batches);
    }

    #[test]
    fn workqueue_improves_wee_on_skewed_data() {
        let pts = skewed_points(400);
        let eps = 0.12;
        let base = SelfJoin::new(&pts, SelfJoinConfig::new(eps))
            .unwrap()
            .run()
            .unwrap();
        let wq = SelfJoin::new(
            &pts,
            SelfJoinConfig::new(eps).with_balancing(Balancing::WorkQueue),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(
            wq.report.wee() > base.report.wee(),
            "WORKQUEUE WEE {} should beat baseline WEE {}",
            wq.report.wee(),
            base.report.wee()
        );
    }

    #[test]
    fn invalid_k_is_rejected() {
        let pts = skewed_points(10);
        let config = SelfJoinConfig::new(0.1).with_k(5);
        assert!(matches!(
            SelfJoin::new(&pts, config),
            Err(JoinError::InvalidK(_))
        ));
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let pts: Vec<Point<2>> = vec![];
        assert!(matches!(
            SelfJoin::new(&pts, SelfJoinConfig::new(0.1)),
            Err(JoinError::Grid(_))
        ));
    }

    #[test]
    fn report_invariants() {
        let pts = skewed_points(150);
        let outcome = SelfJoin::new(&pts, SelfJoinConfig::optimized(0.1))
            .unwrap()
            .run()
            .unwrap();
        let r = &outcome.report;
        assert!(r.wee() > 0.0 && r.wee() <= 1.0);
        assert_eq!(r.total_pairs, outcome.result.len());
        assert!(r.response_time_s() >= r.kernel_time_s() - 1e-12);
        assert!(r.distance_calcs() > 0);
        assert_eq!(r.batches.len(), r.num_batches);
        let stats = r.warp_stats().unwrap();
        assert!(stats.count > 0);
    }

    #[test]
    fn balanced_queue_tightens_per_batch_result_spread() {
        let pts = skewed_points(500);
        let eps = 0.15;
        let batching = crate::BatchingConfig {
            batch_result_capacity: 8_000,
            safety_factor: 1.5,
            ..crate::BatchingConfig::default()
        };
        let fixed = SelfJoin::new(
            &pts,
            SelfJoinConfig::new(eps)
                .with_balancing(Balancing::WorkQueue)
                .with_batching(batching),
        )
        .unwrap()
        .run()
        .unwrap();
        let balanced = SelfJoin::new(
            &pts,
            SelfJoinConfig::new(eps)
                .with_balancing(Balancing::WorkQueue)
                .with_batching(crate::BatchingConfig {
                    balanced_queue: true,
                    ..batching
                }),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(balanced.result.same_pairs_as(&fixed.result));
        let spread = |r: &crate::JoinReport| -> f64 {
            let pairs: Vec<f64> = r.batches.iter().map(|b| b.pairs as f64).collect();
            let mean = pairs.iter().sum::<f64>() / pairs.len() as f64;
            if mean == 0.0 {
                return 0.0;
            }
            pairs.iter().copied().fold(f64::MIN, f64::max) / mean
        };
        assert!(
            fixed.report.num_batches >= 2,
            "need several batches for the comparison"
        );
        assert!(
            spread(&balanced.report) <= spread(&fixed.report) + 1e-9,
            "balanced chunking must not widen the per-batch result spread \
             (balanced {:.2} vs fixed {:.2})",
            spread(&balanced.report),
            spread(&fixed.report)
        );
    }

    #[test]
    fn recommended_k_tracks_workload() {
        // Dense duplicate-heavy data → large candidate sets → high k.
        let dense: Vec<Point<2>> = (0..600)
            .map(|i| [0.001 * (i % 10) as f32, 0.001 * (i / 10) as f32])
            .collect();
        let join = SelfJoin::new(&dense, SelfJoinConfig::new(0.5)).unwrap();
        assert_eq!(join.recommended_k(), 8);
        assert!(join.mean_candidates() > 512.0);
        // Sparse data → tiny candidate sets → k = 1.
        let sparse: Vec<Point<2>> = (0..200)
            .map(|i| [10.0 * (i % 20) as f32, 10.0 * (i / 20) as f32])
            .collect();
        let join = SelfJoin::new(&sparse, SelfJoinConfig::new(0.5)).unwrap();
        assert_eq!(join.recommended_k(), 1);
    }

    #[test]
    fn overflow_triggers_replan_with_more_batches() {
        // Give the estimator a hopeless sample fraction so it undercounts,
        // with a buffer too small for the single planned batch: the executor
        // must recover by doubling the batch count.
        let pts = skewed_points(300);
        let eps = 0.12;
        let expected = reference(&pts, eps);
        assert!(!expected.is_empty());
        let config = SelfJoinConfig::new(eps).with_batching(crate::BatchingConfig {
            batch_result_capacity: expected.len() / 4 + 64,
            sample_fraction: 0.005,
            safety_factor: 1.0,
            ..crate::BatchingConfig::default()
        });
        let outcome = SelfJoin::new(&pts, config).unwrap().run().unwrap();
        assert_eq!(outcome.result.sorted_pairs(), expected);
        assert!(outcome.report.num_batches >= 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let pts = skewed_points(100);
        let config = SelfJoinConfig::new(0.1).with_balancing(Balancing::SortByWorkload);
        let a = SelfJoin::new(&pts, config.clone()).unwrap().run().unwrap();
        let b = SelfJoin::new(&pts, config).unwrap().run().unwrap();
        assert_eq!(a.result.sorted_pairs(), b.result.sorted_pairs());
        assert_eq!(a.report.response_time_s(), b.report.response_time_s());
        assert_eq!(a.report.wee(), b.report.wee());
    }

    #[test]
    fn small_gpu_config_also_works() {
        let pts = skewed_points(60);
        let config = SelfJoinConfig::optimized(0.1).with_gpu(GpuConfig {
            warp_size: 8,
            block_size: 16,
            ..GpuConfig::small_test()
        });
        let outcome = SelfJoin::new(&pts, config).unwrap().run().unwrap();
        assert_eq!(outcome.result.sorted_pairs(), reference(&pts, 0.1));
    }
}
