//! # simjoin — GPU distance similarity self-join with load-imbalance mitigation
//!
//! This crate reproduces the system of *Gallet & Gowanlock, "Load Imbalance
//! Mitigation Optimizations for GPU-Accelerated Similarity Joins"* (2019) on
//! top of the [`warpsim`] SIMT simulator and the [`epsgrid`] ε-grid index.
//!
//! Given a dataset `D` of `n`-dimensional points and a distance threshold ε,
//! the **self-join** finds every ordered pair `(a, b)`, `a ≠ b`, with
//! `dist(a, b) ≤ ε`. The join runs as a sequence of batched GPU kernels; the
//! crate implements the baseline kernel of Gowanlock & Karsin
//! (`GPUCALCGLOBAL`), their `UNICOMP` cell-access pattern, and the paper's
//! four optimizations:
//!
//! - [`AccessPattern::LidUnicomp`] — compare only to neighbor cells with a
//!   larger linear id, balancing per-cell work while halving distance
//!   calculations (§III-B);
//! - [`config::SelfJoinConfig::k`] — `k` threads per query point, each
//!   refining a slice of the candidate set (§III-A);
//! - [`Balancing::SortByWorkload`] — pack threads with similar workloads
//!   into the same warp by sorting each batch by quantified workload
//!   (§III-C);
//! - [`Balancing::WorkQueue`] — a global atomic queue head over the
//!   workload-sorted dataset plus a forced warp execution order (§III-D).
//!
//! ```
//! use simjoin::{SelfJoinConfig, SelfJoin};
//!
//! let pts: Vec<[f32; 2]> = vec![[0.0, 0.0], [0.05, 0.0], [0.9, 0.9]];
//! let config = SelfJoinConfig::new(0.1);
//! let outcome = SelfJoin::new(&pts, config).unwrap().run().unwrap();
//! let pairs = outcome.result.sorted_pairs();
//! assert_eq!(pairs, vec![(0, 1), (1, 0)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batching;
pub mod brute;
pub mod config;
pub mod device_prepass;
pub mod executor;
pub mod fallback;
pub mod fleet;
pub mod hybrid;
pub mod kernels;
pub mod patterns;
pub mod pool;
pub mod result;
pub mod serve;
pub mod workload;

pub use batching::{BatchPlan, BatchingConfig, ResultEstimate};
pub use brute::brute_force_join;
pub use config::{
    validate_epsilon, AccessPattern, Balancing, EpsilonError, ExecMode, RecoveryPolicy,
    RetryPolicy, SelfJoinConfig, SortBackend,
};
pub use device_prepass::{
    device_cell_order, device_inclusive_prefix, device_sort_by_workload, PrePassReport,
};
pub use executor::{DegradationReport, JoinError, JoinOutcome, JoinReport, SelfJoin};
pub use fallback::{
    cpu_join_queries, cpu_join_query_sets, CpuBackendModel, CpuFallbackModel, CpuFallbackStats,
};
pub use fleet::{
    inclusive_weight_prefix, partition_units, partition_units_from_prefix, unit_workloads,
    DeviceHealth, FleetOutcome, FleetRecoveryReport, FleetReport, HealthEvent, ShardReport,
    ShardStrategy,
};
pub use hybrid::{
    choose_cut, choose_cut_measured, forced_cut, gpu_weight_throughput, CutChoice, HybridOutcome,
    HybridPolicy, HybridReport,
};
pub use result::ResultSet;
pub use serve::{
    Latency, Reply, Request, Response, ServeConfig, ServeError, ServeReport, ServeSession,
};
pub use workload::{expand_cell_order, CellWorkload, WorkloadProfile};
