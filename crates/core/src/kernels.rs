//! The range-query kernels as SIMT lane programs.
//!
//! One *group* of `k` lanes computes the ε-neighborhood of one query point
//! (`k = 1` reproduces `GPUCALCGLOBAL`'s one-thread-per-point mapping;
//! `k > 1` is the granularity optimization of §III-A, with each lane
//! refining a contiguous `1/k` slice of every candidate cell, as in the
//! paper's Figure 4). The instruction stream of a lane is:
//!
//! 1. optional work-queue prologue: the group leader's global atomic
//!    increment and the cooperative-group broadcast shuffle (§III-D);
//! 2. a setup op (thread-id computation, query-point load, window ranges);
//! 3. per probed cell: a lookup op (binary search of the non-empty cell
//!    list), then one distance op per assigned candidate, plus an emit op
//!    after every candidate found within ε.
//!
//! Which cells are probed comes from the configured
//! [`crate::patterns`] access pattern, resolved once per join into a
//! [`ResolvedPatterns`] table shared by all batches.

use epsgrid::{euclidean_dist_sq, GridIndex, Point};
use warpsim::{CostModel, DeviceCounter, LaneProgram, LaneSink, Op, RunClaim, WarpSource};

use crate::config::AccessPattern;
use crate::patterns::{probes_for, ProbeRelation};

/// A probe with its index lookup pre-resolved: `found` is the index of the
/// probed cell in the grid's non-empty cell list, if it exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedProbe {
    /// Index of the probed cell, or `None` if the probe misses.
    pub found: Option<u32>,
    /// Relation of the probed cell's points to the query point.
    pub relation: ProbeRelation,
}

/// Pattern probes resolved against the index, shared across batches.
#[derive(Debug, Clone)]
pub struct ResolvedPatterns {
    /// For each non-empty cell, its probe list.
    pub per_cell: Vec<Vec<ResolvedProbe>>,
    /// For each dataset point, its position within its home cell's point
    /// list (used by [`ProbeRelation::OwnCellForward`]).
    pub pos_in_cell: Vec<u32>,
}

impl ResolvedPatterns {
    /// Resolves `pattern` against `grid` for every non-empty cell.
    pub fn compute<const N: usize>(grid: &GridIndex<N>, pattern: AccessPattern) -> Self {
        let per_cell = (0..grid.num_cells())
            .map(|ci| {
                probes_for(pattern, grid, ci)
                    .into_iter()
                    .map(|p| ResolvedProbe {
                        found: grid.find_cell(p.linear_id).map(|i| i as u32),
                        relation: p.relation,
                    })
                    .collect()
            })
            .collect();
        let mut pos_in_cell = vec![0u32; grid.num_points()];
        for ci in 0..grid.num_cells() {
            for (pos, &pid) in grid.cell_points(ci).iter().enumerate() {
                pos_in_cell[pid as usize] = pos as u32;
            }
        }
        Self {
            per_cell,
            pos_in_cell,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LanePhase {
    Prologue(u8),
    Setup,
    NextProbe,
    Scan,
    Emit,
    Done,
}

/// Memoized lookahead over the current `Scan` slice, built lazily by
/// [`RangeQueryLane::peek_run`] and consumed step by step (or in one
/// `commit_run`) so candidate distances are never computed twice.
#[derive(Debug, Clone, Copy)]
struct RunMemo {
    /// Distance steps remaining in the claimed run.
    len: u32,
    /// Whether the run's final step finds an in-ε candidate: the emission
    /// (and the switch to the `Emit` phase) is deferred to that step,
    /// matching the unmemoized `Scan` arm exactly.
    emit_at_end: bool,
}

/// The per-lane state machine of the range-query kernel.
#[derive(Debug, Clone)]
pub struct RangeQueryLane<'a, const N: usize> {
    grid: &'a GridIndex<N>,
    points: &'a [Point<N>],
    resolved: &'a ResolvedPatterns,
    query: u32,
    home_cell: u32,
    rank: u32,
    k: u32,
    eps_sq: f32,
    setup_op: Op,
    lookup_op: Op,
    dist_op: Op,
    emit_op: Op,
    prologue: [Option<Op>; 2],
    phase: LanePhase,
    probe_i: u32,
    cur_cell: u32,
    cur_rel: ProbeRelation,
    pos: u32,
    hi: u32,
    memo: Option<RunMemo>,
}

impl<'a, const N: usize> RangeQueryLane<'a, N> {
    /// Builds the lane for group rank `rank` (0-based, `< k`) of `query`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        grid: &'a GridIndex<N>,
        points: &'a [Point<N>],
        resolved: &'a ResolvedPatterns,
        query: u32,
        rank: u32,
        k: u32,
        epsilon: f32,
        cost: &CostModel,
        prologue: [Option<Op>; 2],
    ) -> Self {
        debug_assert!(rank < k);
        Self {
            grid,
            points,
            resolved,
            query,
            home_cell: grid.home_cell_of(query as usize) as u32,
            rank,
            k,
            eps_sq: epsilon * epsilon,
            setup_op: cost.setup_op(),
            lookup_op: cost.cell_lookup_op(),
            dist_op: cost.distance_op(N as u32),
            emit_op: cost.emit_op(),
            prologue,
            phase: LanePhase::Prologue(0),
            probe_i: 0,
            cur_cell: 0,
            cur_rel: ProbeRelation::AllBidirectional,
            pos: 0,
            hi: 0,
            memo: None,
        }
    }

    /// The contiguous candidate slice `[lo, hi)` this lane refines within a
    /// found cell (Figure 4's per-thread split).
    fn rank_slice(&self, base_lo: u32, base_hi: u32) -> (u32, u32) {
        let n = (base_hi - base_lo) as u64;
        let lo = base_lo + (n * self.rank as u64 / self.k as u64) as u32;
        let hi = base_lo + (n * (self.rank as u64 + 1) / self.k as u64) as u32;
        (lo, hi)
    }

    /// Advances `n` memoized `Scan` steps. The deferred emission — if the
    /// memo ends on an in-ε candidate — fires on the run's final step, so
    /// this is bit-identical to `n` unmemoized `step` calls.
    fn memo_advance(&mut self, n: u32, sink: &mut LaneSink) {
        let memo = self.memo.as_mut().expect("advance without a claimed run");
        debug_assert!(n <= memo.len, "commit past the claimed run");
        if n == 0 {
            return;
        }
        self.pos += n;
        memo.len -= n;
        if memo.len == 0 {
            let emit = memo.emit_at_end;
            self.memo = None;
            if emit {
                let cand = self.grid.cell_points(self.cur_cell as usize)[self.pos as usize - 1];
                match self.cur_rel {
                    ProbeRelation::AllBidirectional => sink.emit(self.query, cand),
                    ProbeRelation::AllSymmetric | ProbeRelation::OwnCellForward => {
                        sink.emit_symmetric(self.query, cand)
                    }
                }
                self.phase = LanePhase::Emit;
            }
        }
    }
}

impl<const N: usize> LaneProgram for RangeQueryLane<'_, N> {
    fn step(&mut self, sink: &mut LaneSink) -> Option<Op> {
        loop {
            match self.phase {
                LanePhase::Prologue(i) => {
                    if (i as usize) < self.prologue.len() {
                        self.phase = LanePhase::Prologue(i + 1);
                        if let Some(op) = self.prologue[i as usize] {
                            return Some(op);
                        }
                    } else {
                        self.phase = LanePhase::Setup;
                    }
                }
                LanePhase::Setup => {
                    self.phase = LanePhase::NextProbe;
                    return Some(self.setup_op);
                }
                LanePhase::NextProbe => {
                    let probes = &self.resolved.per_cell[self.home_cell as usize];
                    let Some(probe) = probes.get(self.probe_i as usize) else {
                        self.phase = LanePhase::Done;
                        return None;
                    };
                    self.probe_i += 1;
                    if let Some(cell) = probe.found {
                        let len = self.grid.cell_points(cell as usize).len() as u32;
                        let base_lo = match probe.relation {
                            ProbeRelation::OwnCellForward => {
                                self.resolved.pos_in_cell[self.query as usize] + 1
                            }
                            _ => 0,
                        };
                        let (lo, hi) = self.rank_slice(base_lo.min(len), len);
                        self.cur_cell = cell;
                        self.cur_rel = probe.relation;
                        self.pos = lo;
                        self.hi = hi;
                        self.phase = LanePhase::Scan;
                    }
                    // A missing cell still costs its binary search.
                    return Some(self.lookup_op);
                }
                LanePhase::Scan => {
                    if self.pos >= self.hi {
                        self.phase = LanePhase::NextProbe;
                        continue;
                    }
                    if self.memo.is_some() {
                        // A peeked-but-divergent round: consume one step of
                        // the memo instead of recomputing the distance.
                        self.memo_advance(1, sink);
                        return Some(self.dist_op);
                    }
                    let cand = self.grid.cell_points(self.cur_cell as usize)[self.pos as usize];
                    self.pos += 1;
                    let d2 = euclidean_dist_sq(
                        &self.points[self.query as usize],
                        &self.points[cand as usize],
                    );
                    if d2 <= self.eps_sq && cand != self.query {
                        match self.cur_rel {
                            ProbeRelation::AllBidirectional => sink.emit(self.query, cand),
                            ProbeRelation::AllSymmetric | ProbeRelation::OwnCellForward => {
                                sink.emit_symmetric(self.query, cand)
                            }
                        }
                        self.phase = LanePhase::Emit;
                    }
                    return Some(self.dist_op);
                }
                LanePhase::Emit => {
                    self.phase = LanePhase::Scan;
                    return Some(self.emit_op);
                }
                LanePhase::Done => return None,
            }
        }
    }

    fn peek_run(&mut self) -> Option<RunClaim> {
        if self.phase != LanePhase::Scan || self.pos >= self.hi {
            // Prologue/setup/lookup/emit steps are all single ops followed
            // by a phase change; only the candidate scan has runs to claim.
            return None;
        }
        let memo = match self.memo {
            Some(m) => m,
            None => {
                // One pass over the remaining slice: either the first in-ε
                // candidate ends the run (its distance step also emits), or
                // the run covers the whole slice. The distances computed
                // here are exactly the ones the claimed steps would have
                // computed, so nothing is evaluated twice.
                let cands = self.grid.cell_points(self.cur_cell as usize);
                let q = &self.points[self.query as usize];
                let mut memo = RunMemo {
                    len: self.hi - self.pos,
                    emit_at_end: false,
                };
                let slice = &cands[self.pos as usize..self.hi as usize];
                for (off, &cand) in slice.iter().enumerate() {
                    let d2 = euclidean_dist_sq(q, &self.points[cand as usize]);
                    if d2 <= self.eps_sq && cand != self.query {
                        memo = RunMemo {
                            len: off as u32 + 1,
                            emit_at_end: true,
                        };
                        break;
                    }
                }
                self.memo = Some(memo);
                memo
            }
        };
        Some(RunClaim {
            op: self.dist_op,
            len: memo.len,
        })
    }

    fn commit_run(&mut self, n: u32, sink: &mut LaneSink) {
        debug_assert!(
            self.phase == LanePhase::Scan,
            "commit outside a claimed Scan run"
        );
        self.memo_advance(n, sink);
    }
}

/// How query points are handed to thread groups.
#[derive(Debug, Clone, Copy)]
pub enum Assignment<'a> {
    /// Static mapping: group `g` computes `queries[g]`.
    Static {
        /// Query point ids in thread-group order.
        queries: &'a [u32],
    },
    /// Work-queue mapping (§III-D): at warp start, the warp's group leaders
    /// reserve the next indices of the workload-sorted `order` array through
    /// the global counter.
    Queue {
        /// The workload-sorted dataset `D'`.
        order: &'a [u32],
        /// The persistent queue head.
        counter: &'a DeviceCounter,
        /// Exclusive upper bound on queue indices this kernel may consume.
        limit: u64,
    },
}

/// The self-join kernel as a [`WarpSource`].
#[derive(Debug, Clone)]
pub struct JoinKernelSource<'a, const N: usize> {
    /// The grid index.
    pub grid: &'a GridIndex<N>,
    /// The dataset (in original id order).
    pub points: &'a [Point<N>],
    /// Pattern probes resolved against the index.
    pub resolved: &'a ResolvedPatterns,
    /// ε.
    pub epsilon: f32,
    /// Threads per query point.
    pub k: u32,
    /// Warp width (must be a multiple of `k`).
    pub warp_size: u32,
    /// Op cost table.
    pub cost: CostModel,
    /// Query-point assignment.
    pub assignment: Assignment<'a>,
    /// Number of thread groups (query-point slots) launched.
    pub num_groups: usize,
}

impl<const N: usize> JoinKernelSource<'_, N> {
    fn groups_per_warp(&self) -> usize {
        (self.warp_size / self.k) as usize
    }

    fn prologue_for(&self, rank: u32) -> [Option<Op>; 2] {
        match self.assignment {
            Assignment::Static { .. } => [None, None],
            Assignment::Queue { .. } => {
                let atomic = (rank == 0).then(|| self.cost.atomic_op());
                let shuffle = (self.k > 1).then(|| self.cost.shuffle_op());
                [atomic, shuffle]
            }
        }
    }
}

impl<'a, const N: usize> WarpSource for JoinKernelSource<'a, N> {
    type Lane = RangeQueryLane<'a, N>;

    fn num_warps(&self) -> usize {
        (self.num_groups * self.k as usize).div_ceil(self.warp_size as usize)
    }

    fn make_warp(&self, warp_id: u32) -> Vec<Self::Lane> {
        let gpw = self.groups_per_warp();
        let g_lo = warp_id as usize * gpw;
        let slots = gpw.min(self.num_groups.saturating_sub(g_lo));
        let assigned: Vec<u32> = match self.assignment {
            Assignment::Static { queries } => queries[g_lo..g_lo + slots].to_vec(),
            Assignment::Queue {
                order,
                counter,
                limit,
            } => {
                if slots == 0 {
                    Vec::new()
                } else {
                    let start = counter.fetch_add(slots as u64);
                    (0..slots as u64)
                        .filter_map(|i| {
                            let idx = start + i;
                            (idx < limit).then(|| order[idx as usize])
                        })
                        .collect()
                }
            }
        };
        let mut lanes = Vec::with_capacity(assigned.len() * self.k as usize);
        for &pid in &assigned {
            for rank in 0..self.k {
                lanes.push(RangeQueryLane::new(
                    self.grid,
                    self.points,
                    self.resolved,
                    pid,
                    rank,
                    self.k,
                    self.epsilon,
                    &self.cost,
                    self.prologue_for(rank),
                ));
            }
        }
        lanes
    }
}

/// Micro-executes one warp of a kernel while recording its lane-occupancy
/// timeline (see [`warpsim::trace`]) — the diagnostic view behind the
/// paper's Figures 3 and 7. For queue-assigned kernels this consumes the
/// warp's queue reservations, so trace on a throwaway source.
pub fn trace_warp_of<const N: usize>(
    source: &JoinKernelSource<'_, N>,
    warp_id: u32,
) -> warpsim::WarpTrace {
    let mut lanes = source.make_warp(warp_id);
    let mut sink = LaneSink::new();
    warpsim::trace_warp(&mut lanes, source.warp_size, &mut sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_join;
    use warpsim::{launch, DeviceBuffer, GpuConfig, IssueOrder};

    fn clustered_points() -> Vec<Point<2>> {
        let mut pts = Vec::new();
        // a dense blob, a pair, and isolated points
        for i in 0..12 {
            pts.push([0.3 + 0.015 * i as f32, 0.4 + 0.01 * (i % 3) as f32]);
        }
        pts.push([2.0, 2.0]);
        pts.push([2.05, 2.02]);
        pts.push([5.0, 5.0]);
        pts.push([-1.0, 3.0]);
        pts
    }

    fn run_kernel(
        pts: &[Point<2>],
        eps: f32,
        pattern: AccessPattern,
        k: u32,
    ) -> (Vec<(u32, u32)>, warpsim::LaunchReport) {
        let grid = GridIndex::build(pts, eps).unwrap();
        let resolved = ResolvedPatterns::compute(&grid, pattern);
        let queries: Vec<u32> = (0..pts.len() as u32).collect();
        let gpu = GpuConfig {
            warp_size: 8,
            block_size: 16,
            ..GpuConfig::small_test()
        };
        let src = JoinKernelSource {
            grid: &grid,
            points: pts,
            resolved: &resolved,
            epsilon: eps,
            k,
            warp_size: gpu.warp_size,
            cost: gpu.cost,
            assignment: Assignment::Static { queries: &queries },
            num_groups: pts.len(),
        };
        let mut out = DeviceBuffer::with_capacity(1_000_000);
        let report = launch(&gpu, &src, IssueOrder::InOrder, &mut out).unwrap();
        let mut pairs = out.into_vec();
        pairs.sort_unstable();
        (pairs, report)
    }

    fn reference(pts: &[Point<2>], eps: f32) -> Vec<(u32, u32)> {
        let mut pairs = brute_force_join(pts, eps);
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn full_window_matches_brute_force() {
        let pts = clustered_points();
        let (pairs, _) = run_kernel(&pts, 0.12, AccessPattern::FullWindow, 1);
        assert_eq!(pairs, reference(&pts, 0.12));
    }

    #[test]
    fn unicomp_matches_brute_force() {
        let pts = clustered_points();
        let (pairs, _) = run_kernel(&pts, 0.12, AccessPattern::Unicomp, 1);
        assert_eq!(pairs, reference(&pts, 0.12));
    }

    #[test]
    fn lid_unicomp_matches_brute_force() {
        let pts = clustered_points();
        let (pairs, _) = run_kernel(&pts, 0.12, AccessPattern::LidUnicomp, 1);
        assert_eq!(pairs, reference(&pts, 0.12));
    }

    #[test]
    fn k_split_matches_brute_force_for_all_k() {
        let pts = clustered_points();
        for k in [1u32, 2, 4, 8] {
            for pattern in [
                AccessPattern::FullWindow,
                AccessPattern::Unicomp,
                AccessPattern::LidUnicomp,
            ] {
                let (pairs, _) = run_kernel(&pts, 0.12, pattern, k);
                assert_eq!(pairs, reference(&pts, 0.12), "pattern {pattern:?}, k={k}");
            }
        }
    }

    #[test]
    fn unidirectional_patterns_halve_distance_calcs() {
        let pts = clustered_points();
        let (_, full) = run_kernel(&pts, 0.12, AccessPattern::FullWindow, 1);
        let (_, uni) = run_kernel(&pts, 0.12, AccessPattern::Unicomp, 1);
        let (_, lid) = run_kernel(&pts, 0.12, AccessPattern::LidUnicomp, 1);
        // Unidirectional patterns compute each cross-cell pair once instead
        // of twice and intra-cell pairs m(m-1)/2 instead of m² times.
        assert!(uni.distance_calcs() < full.distance_calcs());
        assert!(lid.distance_calcs() < full.distance_calcs());
        assert_eq!(uni.distance_calcs(), lid.distance_calcs());
        let ratio = full.distance_calcs() as f64 / uni.distance_calcs() as f64;
        assert!(
            ratio > 1.7 && ratio < 2.6,
            "expected roughly half, got ratio {ratio}"
        );
    }

    #[test]
    fn queue_assignment_consumes_order_exactly_once() {
        let pts = clustered_points();
        let eps = 0.12;
        let grid = GridIndex::build(&pts, eps).unwrap();
        let resolved = ResolvedPatterns::compute(&grid, AccessPattern::LidUnicomp);
        let order: Vec<u32> = (0..pts.len() as u32).rev().collect();
        let counter = DeviceCounter::new();
        let gpu = GpuConfig {
            warp_size: 8,
            block_size: 16,
            ..GpuConfig::small_test()
        };
        let src = JoinKernelSource {
            grid: &grid,
            points: &pts,
            resolved: &resolved,
            epsilon: eps,
            k: 2,
            warp_size: gpu.warp_size,
            cost: gpu.cost,
            assignment: Assignment::Queue {
                order: &order,
                counter: &counter,
                limit: order.len() as u64,
            },
            num_groups: pts.len(),
        };
        let mut out = DeviceBuffer::with_capacity(1_000_000);
        launch(&gpu, &src, IssueOrder::InOrder, &mut out).unwrap();
        assert_eq!(counter.load(), pts.len() as u64);
        let mut pairs = out.into_vec();
        pairs.sort_unstable();
        assert_eq!(pairs, reference(&pts, eps));
    }

    #[test]
    fn queue_respects_limit() {
        let pts = clustered_points();
        let eps = 0.12;
        let grid = GridIndex::build(&pts, eps).unwrap();
        let resolved = ResolvedPatterns::compute(&grid, AccessPattern::FullWindow);
        let order: Vec<u32> = (0..pts.len() as u32).collect();
        let counter = DeviceCounter::new();
        let gpu = GpuConfig {
            warp_size: 8,
            block_size: 16,
            ..GpuConfig::small_test()
        };
        // Launch more group slots than the limit allows.
        let src = JoinKernelSource {
            grid: &grid,
            points: &pts,
            resolved: &resolved,
            epsilon: eps,
            k: 1,
            warp_size: gpu.warp_size,
            cost: gpu.cost,
            assignment: Assignment::Queue {
                order: &order,
                counter: &counter,
                limit: 4,
            },
            num_groups: pts.len(),
        };
        let mut out = DeviceBuffer::with_capacity(1_000_000);
        launch(&gpu, &src, IssueOrder::InOrder, &mut out).unwrap();
        // Only queries 0..4 were processed.
        let processed: std::collections::BTreeSet<u32> =
            out.as_slice().iter().map(|&(q, _)| q).collect();
        assert!(processed.iter().all(|&q| q < 4 || {
            // symmetric emissions may name later points as the *first*
            // element only via emit_symmetric from queries < 4
            reference(&pts, eps).iter().any(|&(a, b)| a == q && b < 4)
        }));
    }

    #[test]
    fn k_and_granularity_reduce_per_lane_imbalance() {
        // With k=4 the heavy query's work is split across four lanes, so the
        // warp-level efficiency improves on skewed data.
        let pts = clustered_points();
        let (_, k1) = run_kernel(&pts, 0.12, AccessPattern::FullWindow, 1);
        let (_, k4) = run_kernel(&pts, 0.12, AccessPattern::FullWindow, 4);
        assert!(
            k4.wee() > k1.wee(),
            "k=4 WEE {} should exceed k=1 WEE {}",
            k4.wee(),
            k1.wee()
        );
        assert_eq!(k1.distance_calcs(), k4.distance_calcs(), "same total work");
    }

    #[test]
    fn warp_trace_reflects_imbalance() {
        let pts = clustered_points();
        let eps = 0.12;
        let grid = GridIndex::build(&pts, eps).unwrap();
        let resolved = ResolvedPatterns::compute(&grid, AccessPattern::FullWindow);
        let queries: Vec<u32> = (0..pts.len() as u32).collect();
        let gpu = GpuConfig {
            warp_size: 8,
            block_size: 16,
            ..GpuConfig::small_test()
        };
        let src = JoinKernelSource {
            grid: &grid,
            points: &pts,
            resolved: &resolved,
            epsilon: eps,
            k: 1,
            warp_size: gpu.warp_size,
            cost: gpu.cost,
            assignment: Assignment::Static { queries: &queries },
            num_groups: pts.len(),
        };
        // Warp 0 holds the 8 densest points plus… actually points 0..8 of
        // the 12-point blob: similar workloads. Warp 1 mixes blob tail with
        // isolated points → idle lanes.
        let t0 = trace_warp_of(&src, 0);
        let t1 = trace_warp_of(&src, 1);
        assert!(t0.cycles() > 0 && t1.cycles() > 0);
        assert!(
            t1.idle_fraction() > t0.idle_fraction(),
            "mixed warp should idle more: {} vs {}",
            t1.idle_fraction(),
            t0.idle_fraction()
        );
        let art = t1.render_ascii(40);
        assert_eq!(art.lines().count(), 8);
        assert!(art.contains('.'), "idle periods must be visible");
    }

    #[test]
    fn step_modes_are_bit_identical_on_real_kernels() {
        use warpsim::{launch_with, LaunchOptions, StepMode};
        let pts = clustered_points();
        let eps = 0.12;
        let grid = GridIndex::build(&pts, eps).unwrap();
        let queries: Vec<u32> = (0..pts.len() as u32).collect();
        let gpu = GpuConfig {
            warp_size: 8,
            block_size: 16,
            ..GpuConfig::small_test()
        };
        for pattern in [
            AccessPattern::FullWindow,
            AccessPattern::Unicomp,
            AccessPattern::LidUnicomp,
        ] {
            let resolved = ResolvedPatterns::compute(&grid, pattern);
            for k in [1u32, 2, 4] {
                let src = JoinKernelSource {
                    grid: &grid,
                    points: &pts,
                    resolved: &resolved,
                    epsilon: eps,
                    k,
                    warp_size: gpu.warp_size,
                    cost: gpu.cost,
                    assignment: Assignment::Static { queries: &queries },
                    num_groups: pts.len(),
                };
                let run = |mode: StepMode| {
                    let mut out = DeviceBuffer::with_capacity(1_000_000);
                    let opts = LaunchOptions::default().with_step_mode(mode);
                    let r = launch_with(&gpu, &src, IssueOrder::InOrder, &mut out, &opts).unwrap();
                    (out.into_vec(), r)
                };
                let (pairs_s, rep_s) = run(StepMode::Stepped);
                let (pairs_f, rep_f) = run(StepMode::RunLength);
                // Exact emission order, not just the sorted pair set.
                assert_eq!(pairs_s, pairs_f, "pattern {pattern:?}, k={k}");
                assert_eq!(rep_s.totals, rep_f.totals, "pattern {pattern:?}, k={k}");
                assert_eq!(rep_s.warp_cycles, rep_f.warp_cycles);
                assert_eq!(rep_s.makespan.makespan, rep_f.makespan.makespan);
            }
        }
    }

    #[test]
    fn empty_launch_with_zero_groups() {
        let pts = clustered_points();
        let grid = GridIndex::build(&pts, 0.12).unwrap();
        let resolved = ResolvedPatterns::compute(&grid, AccessPattern::FullWindow);
        let gpu = GpuConfig::small_test();
        let src = JoinKernelSource {
            grid: &grid,
            points: &pts,
            resolved: &resolved,
            epsilon: 0.12,
            k: 1,
            warp_size: gpu.warp_size,
            cost: gpu.cost,
            assignment: Assignment::Static { queries: &[] },
            num_groups: 0,
        };
        let mut out = DeviceBuffer::with_capacity(10);
        let r = launch(&gpu, &src, IssueOrder::InOrder, &mut out).unwrap();
        assert_eq!(r.warps, 0);
        assert!(out.is_empty());
    }
}
