//! Deterministic scoped host worker pool.
//!
//! Every host-parallel layer in the workspace — bench sweep cells, the
//! hybrid CPU backend, fleet shards, within-device batches — runs on this
//! one primitive: [`par_map`] applies a function to indexed items on up to
//! `jobs` OS threads and returns the results **in input order**, no matter
//! how the items were scheduled. Workers steal fixed-size chunks of the
//! index space from a shared atomic cursor, so a straggler item only delays
//! its own chunk while idle workers drain the rest.
//!
//! The pool is purely host-side machinery: it changes wall-clock time, never
//! simulated results. Callers that need bit-identical artifacts across
//! `jobs` values get that for free as long as their per-item work is
//! self-contained — the merge order here is always `0, 1, 2, …`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a `host_jobs`-style knob to a concrete worker count:
/// `0` means "auto" (one worker per available hardware thread), any other
/// value is used as-is.
pub fn resolve(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Applies `f` to every item on up to `jobs` threads; results come back in
/// input order regardless of scheduling.
///
/// `jobs == 0` resolves to the available hardware parallelism; `jobs <= 1`
/// (or a single item) degrades to a plain serial map on the calling thread.
/// Workers claim chunks of consecutive indices from an atomic cursor —
/// chunked work-stealing — and write each result into its per-index slot,
/// so the output order (and therefore every downstream merge) is
/// independent of `jobs`.
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let jobs = resolve(jobs).min(items.len().max(1));
    if jobs <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    // Chunks several times smaller than an even split keep workers busy when
    // per-item costs are skewed, without a claim per item.
    let chunk = work.len().div_ceil(jobs * 4).max(1);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= work.len() {
                    break;
                }
                let end = (start + chunk).min(work.len());
                for idx in start..end {
                    let item = work[idx].lock().unwrap().take().expect("item claimed once");
                    let out = f(item);
                    *slots[idx].lock().unwrap() = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_is_auto_and_nonzero_is_identity() {
        assert!(resolve(0) >= 1);
        assert_eq!(resolve(1), 1);
        assert_eq!(resolve(7), 7);
    }

    #[test]
    fn results_are_in_input_order_for_any_job_count() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [0usize, 1, 2, 3, 8, 64] {
            let got = par_map(jobs, items.clone(), |x| x * x);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let got: Vec<u32> = par_map(4, Vec::<u32>::new(), |x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn skewed_items_still_merge_in_order() {
        // One heavy item at the front; stealing must not reorder results.
        let items: Vec<u32> = (0..32).collect();
        let got = par_map(4, items, |x| {
            let spins = if x == 0 { 200_000 } else { 10 };
            let mut acc = x as u64;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in got.iter().enumerate() {
            assert_eq!(*x, i as u32);
        }
    }
}
