//! Always-on serve daemon: a long-running request loop over a maintained
//! ε-grid.
//!
//! The batch binaries (`simjoin join`, `sj-bench`) pay the full pipeline on
//! every invocation: read the dataset, build the ε-grid, quantify workloads,
//! launch, print, exit. A service answering a *stream* of ε-neighborhood
//! queries and whole self-joins over a slowly churning dataset should pay
//! none of that per request. [`ServeSession`] is that service:
//!
//! - the index lives in an [`epsgrid::DynamicGrid`] — inserts and removes
//!   patch the canonical layout in place and re-quantify only the touched
//!   cell windows, with a full-rebuild escape hatch (`serve.reindex`
//!   telemetry distinguishes the two);
//! - queries and joins pass through **admission control**: a bounded queue
//!   with typed rejection ([`ServeError::QueueFull`]) instead of unbounded
//!   buffering;
//! - queued requests at the same ε are **coalesced** into one batched
//!   launch through the existing executor paths ([`SelfJoin::run`],
//!   [`SelfJoin::run_hybrid`]) and answered from the shared
//!   [`ResultSet`]; repeated flushes in the same churn epoch answer from a
//!   result cache without launching at all;
//! - every request is timed in **model seconds** on the session's service
//!   clock (queue wait + execute), recorded as `serve.request` events and
//!   rolled up into P50/P99 latencies in the [`ServeReport`].
//!
//! Exactness is non-negotiable: every query answer is the exact
//! ε-neighborhood the brute-force join would produce, whatever the access
//! pattern, balancing mode, or execution substrate.
//!
//! The session speaks two dialects: a structured [`Request`]/[`Response`]
//! API for benches and tests, and a line-delimited strict-JSON protocol
//! ([`ServeSession::handle_line`]) for the CLI daemon and socket front-ends.

use std::collections::VecDeque;
use std::fmt::Write as _;

use epsgrid::{ChurnError, DynamicGrid, GridBuildError, Point};
use sj_telemetry::{json, Event, Telemetry};

use crate::config::{validate_epsilon, EpsilonError, ExecMode, SelfJoinConfig};
use crate::executor::{JoinError, SelfJoin};
use crate::hybrid::HybridPolicy;
use crate::result::ResultSet;

/// Default bound on the admission queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Service-level knobs, layered over the join's own [`SelfJoinConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Maximum queued (admitted but unexecuted) queries and joins. Further
    /// submissions are rejected with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Merge queued requests at the same ε into one launch and answer
    /// repeated same-epoch flushes from the result cache. When `false` the
    /// session degrades to the naive daemon: every admitted request becomes
    /// its own launch, immediately (the serial baseline of the serve
    /// benchmark).
    pub coalesce: bool,
    /// Dirty-cell fraction above which the maintained grid abandons
    /// incremental patching and rebuilds (see
    /// [`epsgrid::DynamicGrid::with_rebuild_limit`]).
    pub rebuild_limit: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            coalesce: true,
            rebuild_limit: epsgrid::dynamic::DEFAULT_REBUILD_LIMIT,
        }
    }
}

/// Typed failures at the serve boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission queue is full; the request was rejected, not buffered.
    QueueFull {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The request's ε failed validation.
    Epsilon(EpsilonError),
    /// The request names a point id outside the current dataset.
    UnknownPoint(u32),
    /// A streaming insert/remove was rejected by the maintained grid.
    Churn(ChurnError),
    /// The request line/document was not a valid protocol message.
    BadRequest(String),
    /// The coalesced launch itself failed.
    Join(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull { capacity } => {
                write!(f, "serve queue is full (capacity {capacity})")
            }
            Self::Epsilon(e) => write!(f, "{e}"),
            Self::UnknownPoint(pid) => {
                write!(f, "point id {pid} is not in the current dataset")
            }
            Self::Churn(e) => write!(f, "{e}"),
            Self::BadRequest(msg) => write!(f, "bad request: {msg}"),
            Self::Join(msg) => write!(f, "join failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// Stable machine-readable discriminant used in protocol error lines.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::QueueFull { .. } => "queue_full",
            Self::Epsilon(_) => "bad_epsilon",
            Self::UnknownPoint(_) => "unknown_point",
            Self::Churn(ChurnError::NonFinitePoint) => "bad_point",
            Self::Churn(ChurnError::UnknownPoint(_)) => "unknown_point",
            Self::Churn(ChurnError::WouldEmptyDataset) => "would_empty",
            Self::BadRequest(_) => "bad_request",
            Self::Join(_) => "join_failed",
        }
    }
}

/// One request submitted to a [`ServeSession`].
#[derive(Debug, Clone, PartialEq)]
pub enum Request<const N: usize> {
    /// The exact ε-neighborhood of one dataset point.
    Query {
        /// Id of the query point (current dataset numbering).
        point_id: u32,
        /// Distance threshold for this request.
        epsilon: f32,
    },
    /// A whole self-join at the given ε (answered with summary statistics).
    Join {
        /// Distance threshold for this request.
        epsilon: f32,
    },
    /// Streaming insert of one point (assigned the next dense id).
    Insert {
        /// The new point's coordinates.
        point: Point<N>,
    },
    /// Streaming removal of one point (swap-remove id semantics: the
    /// response names which point, if any, was renamed to the freed id).
    Remove {
        /// Id of the point to remove.
        point_id: u32,
    },
    /// Execute everything queued without mutating the dataset.
    Flush,
    /// A [`ServeReport`] snapshot (flushes the queue first).
    Stats,
    /// Flush, answer, and mark the session finished.
    Shutdown,
}

/// The payload of one response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to a [`Request::Query`].
    Neighbors {
        /// The query point.
        point_id: u32,
        /// The request's ε.
        epsilon: f32,
        /// Exact ε-neighborhood (ascending point ids, `point_id` excluded).
        neighbors: Vec<u32>,
        /// Latency accounting for this request, in model seconds.
        latency: Latency,
        /// How many requests shared this launch (1 = not coalesced).
        coalesced: u64,
        /// Whether the answer came from the same-epoch result cache.
        cache_hit: bool,
    },
    /// Answer to a [`Request::Join`].
    JoinSummary {
        /// The request's ε.
        epsilon: f32,
        /// Total ordered pairs within ε.
        pairs: u64,
        /// Mean neighbors per point.
        mean_neighbors: f64,
        /// Latency accounting for this request, in model seconds.
        latency: Latency,
        /// How many requests shared this launch (1 = not coalesced).
        coalesced: u64,
        /// Whether the answer came from the same-epoch result cache.
        cache_hit: bool,
    },
    /// Answer to a [`Request::Insert`].
    Inserted {
        /// The id assigned to the new point.
        point_id: u32,
        /// `"incremental"` or `"rebuild"`.
        reindex: &'static str,
    },
    /// Answer to a [`Request::Remove`].
    Removed {
        /// The removed id.
        point_id: u32,
        /// The point renamed into the freed id, if any.
        moved_id: Option<u32>,
        /// `"incremental"` or `"rebuild"`.
        reindex: &'static str,
    },
    /// Answer to a [`Request::Flush`].
    Flushed {
        /// How many queued requests the flush executed.
        executed: u64,
    },
    /// Answer to a [`Request::Stats`].
    Stats(ServeReport),
    /// Answer to a [`Request::Shutdown`].
    ShuttingDown,
    /// A typed failure (the request did not execute).
    Error {
        /// Human-readable description (unified across entry points).
        message: String,
        /// Machine-readable discriminant (see [`ServeError::kind`]).
        kind: &'static str,
    },
}

/// Per-request latency in model seconds on the session's service clock.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Latency {
    /// Model seconds spent queued before the launch started.
    pub queue_s: f64,
    /// Model seconds of the launch that answered the request.
    pub execute_s: f64,
    /// `queue_s + execute_s`.
    pub total_s: f64,
}

/// One response: the id of the request it answers plus the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id assigned to the request at submission.
    pub id: u64,
    /// The payload.
    pub reply: Reply,
}

/// Aggregate service counters plus latency percentiles, all model seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServeReport {
    /// Requests submitted (including rejected and malformed ones).
    pub requests: u64,
    /// Admitted ε-neighborhood queries.
    pub queries: u64,
    /// Admitted whole-join requests.
    pub joins: u64,
    /// Applied inserts.
    pub inserts: u64,
    /// Applied removes.
    pub removes: u64,
    /// Requests rejected by admission control (queue full).
    pub rejected: u64,
    /// Requests that failed validation or execution.
    pub errors: u64,
    /// Join launches actually executed.
    pub launches: u64,
    /// Admitted requests answered by a launch shared with at least one
    /// other request.
    pub coalesced_requests: u64,
    /// Admitted requests answered from the same-epoch result cache.
    pub cache_hits: u64,
    /// Mutations absorbed incrementally by the maintained grid.
    pub incremental_reindexes: u64,
    /// Mutations (or dirt accumulation) that forced a full rebuild.
    pub full_rebuilds: u64,
    /// Cells re-quantified by incremental maintenance.
    pub requantified_cells: u64,
    /// Total launch model seconds accumulated on the service clock.
    pub execute_model_s: f64,
    /// Median queue wait.
    pub queue_p50_s: f64,
    /// 99th-percentile queue wait.
    pub queue_p99_s: f64,
    /// Median launch time.
    pub execute_p50_s: f64,
    /// 99th-percentile launch time.
    pub execute_p99_s: f64,
    /// Median total latency.
    pub total_p50_s: f64,
    /// 99th-percentile total latency.
    pub total_p99_s: f64,
}

#[derive(Debug, Clone, Copy)]
enum PendingKind {
    Query(u32),
    Join,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: u64,
    kind: PendingKind,
    epsilon: f32,
    arrival_s: f64,
}

struct CachedAnswer {
    eps_bits: u32,
    neighbors: Vec<Vec<u32>>,
    pairs: u64,
    mean_neighbors: f64,
}

/// The serve daemon's state machine. See the module docs for semantics.
pub struct ServeSession<'a, const N: usize> {
    grid: DynamicGrid<N>,
    base: SelfJoinConfig,
    cfg: ServeConfig,
    telemetry: &'a dyn Telemetry,
    pending: VecDeque<Pending>,
    /// Same-epoch result cache (cleared on every mutation).
    cache: Vec<CachedAnswer>,
    next_id: u64,
    /// The service clock, in model seconds: advanced only by launches.
    clock_s: f64,
    samples: Vec<Latency>,
    report: ServeReport,
    shut_down: bool,
}

impl<const N: usize> std::fmt::Debug for ServeSession<'_, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeSession")
            .field("points", &self.grid.len())
            .field("cfg", &self.cfg)
            .field("pending", &self.pending.len())
            .field("clock_s", &self.clock_s)
            .field("shut_down", &self.shut_down)
            .finish_non_exhaustive()
    }
}

impl<'a, const N: usize> ServeSession<'a, N> {
    /// Builds the maintained index over the initial dataset.
    ///
    /// `base.epsilon` is the ε the index is quantized at: requests at
    /// (bit-)equal ε reuse the maintained index and its incremental
    /// workload quantification; requests at other ε build a throwaway grid
    /// for their launch (still exact, just unamortized).
    pub fn new(
        points: Vec<Point<N>>,
        base: SelfJoinConfig,
        cfg: ServeConfig,
    ) -> Result<Self, ServeError> {
        validate_epsilon(base.epsilon).map_err(ServeError::Epsilon)?;
        let grid = DynamicGrid::new(points, base.epsilon)
            .map_err(|e| ServeError::BadRequest(grid_build_message(&e)))?
            .with_rebuild_limit(cfg.rebuild_limit);
        Ok(Self {
            grid,
            base,
            cfg,
            telemetry: &sj_telemetry::NULL,
            pending: VecDeque::new(),
            cache: Vec::new(),
            next_id: 0,
            clock_s: 0.0,
            samples: Vec::new(),
            report: ServeReport::default(),
            shut_down: false,
        })
    }

    /// Attaches a telemetry sink receiving `serve.*` events (plus the
    /// executor events of every launch the session performs).
    pub fn with_telemetry(mut self, telemetry: &'a dyn Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Current dataset size.
    pub fn num_points(&self) -> usize {
        self.grid.len()
    }

    /// The service clock, in model seconds.
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Whether a [`Request::Shutdown`] has been processed.
    pub fn is_shut_down(&self) -> bool {
        self.shut_down
    }

    /// Counter + percentile snapshot.
    pub fn report(&self) -> ServeReport {
        let mut r = self.report;
        let stats = self.grid.stats();
        r.incremental_reindexes = stats.incremental_inserts + stats.incremental_removes;
        r.full_rebuilds = stats.full_rebuilds;
        r.requantified_cells = stats.requantified_cells;
        let q: Vec<f64> = self.samples.iter().map(|l| l.queue_s).collect();
        let e: Vec<f64> = self.samples.iter().map(|l| l.execute_s).collect();
        let t: Vec<f64> = self.samples.iter().map(|l| l.total_s).collect();
        (r.queue_p50_s, r.queue_p99_s) = percentiles(&q);
        (r.execute_p50_s, r.execute_p99_s) = percentiles(&e);
        (r.total_p50_s, r.total_p99_s) = percentiles(&t);
        r
    }

    /// Submits one request. Queries and joins are admitted to the queue
    /// (responses arrive at the next flush); every other request flushes
    /// the queue first, so the returned batch preserves submission order.
    pub fn request(&mut self, req: Request<N>) -> Vec<Response> {
        let id = self.next_id;
        self.next_id += 1;
        self.report.requests += 1;
        match req {
            Request::Query { point_id, epsilon } => {
                self.admit(id, PendingKind::Query(point_id), epsilon)
            }
            Request::Join { epsilon } => self.admit(id, PendingKind::Join, epsilon),
            Request::Insert { point } => self.mutate(id, MutateOp::Insert(point)),
            Request::Remove { point_id } => self.mutate(id, MutateOp::Remove(point_id)),
            Request::Flush => {
                let mut out = self.flush_queue();
                let executed = out.len() as u64;
                out.push(Response {
                    id,
                    reply: Reply::Flushed { executed },
                });
                out
            }
            Request::Stats => {
                let mut out = self.flush_queue();
                out.push(Response {
                    id,
                    reply: Reply::Stats(self.report()),
                });
                out
            }
            Request::Shutdown => {
                let mut out = self.flush_queue();
                self.shut_down = true;
                out.push(Response {
                    id,
                    reply: Reply::ShuttingDown,
                });
                out
            }
        }
    }

    fn reject(&mut self, id: u64, err: ServeError) -> Vec<Response> {
        if matches!(err, ServeError::QueueFull { .. }) {
            self.report.rejected += 1;
        } else {
            self.report.errors += 1;
        }
        let reply = Reply::Error {
            message: err.to_string(),
            kind: err.kind(),
        };
        self.telemetry.record(
            Event::new("serve", "request")
                .u64("id", id)
                .bool("ok", false)
                .str("kind", err.kind()),
        );
        vec![Response { id, reply }]
    }

    fn admit(&mut self, id: u64, kind: PendingKind, epsilon: f32) -> Vec<Response> {
        if let Err(e) = validate_epsilon(epsilon) {
            return self.reject(id, ServeError::Epsilon(e));
        }
        if let PendingKind::Query(pid) = kind {
            // The queue only flushes before mutations, so ids stay valid
            // between admission and execution.
            if pid as usize >= self.grid.len() {
                return self.reject(id, ServeError::UnknownPoint(pid));
            }
        }
        if self.pending.len() >= self.cfg.queue_capacity {
            return self.reject(
                id,
                ServeError::QueueFull {
                    capacity: self.cfg.queue_capacity,
                },
            );
        }
        match kind {
            PendingKind::Query(_) => self.report.queries += 1,
            PendingKind::Join => self.report.joins += 1,
        }
        self.pending.push_back(Pending {
            id,
            kind,
            epsilon,
            arrival_s: self.clock_s,
        });
        if self.cfg.coalesce {
            Vec::new()
        } else {
            // Serial baseline: no admission window, launch immediately.
            self.flush_queue()
        }
    }

    /// Executes everything queued, one launch per distinct ε (in first-
    /// arrival order), and returns the responses sorted by request id.
    fn flush_queue(&mut self) -> Vec<Response> {
        let mut groups: Vec<(u32, Vec<Pending>)> = Vec::new();
        while let Some(p) = self.pending.pop_front() {
            let bits = p.epsilon.to_bits();
            match groups.iter_mut().find(|(b, _)| *b == bits) {
                Some((_, members)) => members.push(p),
                None => groups.push((bits, vec![p])),
            }
        }
        let mut out = Vec::new();
        for (_, members) in groups {
            out.extend(self.execute_group(members));
        }
        out.sort_by_key(|r| r.id);
        out
    }

    fn execute_group(&mut self, members: Vec<Pending>) -> Vec<Response> {
        let epsilon = members[0].epsilon;
        let eps_bits = epsilon.to_bits();
        let coalesced = members.len() as u64;
        let cached = self.cfg.coalesce && self.cache.iter().any(|c| c.eps_bits == eps_bits);
        let start_s = self.clock_s;
        let execute_s = if cached {
            0.0
        } else {
            match self.launch(epsilon) {
                Ok(s) => s,
                Err(e) => {
                    let msg = e.to_string();
                    return members
                        .iter()
                        .flat_map(|p| self.reject(p.id, ServeError::Join(msg.clone())).into_iter())
                        .collect();
                }
            }
        };
        self.clock_s += execute_s;
        self.telemetry.record(
            Event::new("serve", "coalesce")
                .f64("eps", f64::from(epsilon))
                .u64("merged", coalesced)
                .bool("cache_hit", cached)
                .f64("execute_model_s", execute_s),
        );
        let answer_at = self
            .cache
            .iter()
            .position(|c| c.eps_bits == eps_bits)
            .expect("launch populates the cache for its ε");
        let mut out = Vec::with_capacity(members.len());
        for p in members {
            let latency = Latency {
                queue_s: (start_s - p.arrival_s).max(0.0),
                execute_s,
                total_s: (start_s - p.arrival_s).max(0.0) + execute_s,
            };
            self.samples.push(latency);
            if coalesced > 1 {
                self.report.coalesced_requests += 1;
            }
            if cached {
                self.report.cache_hits += 1;
            }
            let answer = &self.cache[answer_at];
            let (op, reply) = match p.kind {
                PendingKind::Query(pid) => (
                    "query",
                    Reply::Neighbors {
                        point_id: pid,
                        epsilon,
                        neighbors: answer.neighbors[pid as usize].clone(),
                        latency,
                        coalesced,
                        cache_hit: cached,
                    },
                ),
                PendingKind::Join => (
                    "join",
                    Reply::JoinSummary {
                        epsilon,
                        pairs: answer.pairs,
                        mean_neighbors: answer.mean_neighbors,
                        latency,
                        coalesced,
                        cache_hit: cached,
                    },
                ),
            };
            self.telemetry.record(
                Event::new("serve", "request")
                    .str("op", op)
                    .u64("id", p.id)
                    .bool("ok", true)
                    .f64("eps", f64::from(epsilon))
                    .f64("queue_s", latency.queue_s)
                    .f64("execute_s", latency.execute_s)
                    .f64("total_s", latency.total_s)
                    .u64("coalesced", coalesced)
                    .bool("cache_hit", cached),
            );
            out.push(Response { id: p.id, reply });
        }
        out
    }

    /// Runs one join launch at `epsilon` and caches its answers. Returns
    /// the launch's model seconds.
    fn launch(&mut self, epsilon: f32) -> Result<f64, JoinError> {
        let maintained = epsilon.to_bits() == self.grid.epsilon().to_bits();
        let per_cell: Vec<u64> = self.grid.per_cell_workload().to_vec();
        let index = self.grid.index().clone();
        let points: Vec<Point<N>> = self.grid.points().to_vec();
        let mut config = self.base.clone();
        config.epsilon = epsilon;
        let exec_mode = config.exec_mode;
        let join = if maintained {
            SelfJoin::with_maintained_index(&points, config, index, Some(&per_cell))?
        } else {
            SelfJoin::new(&points, config)?
        }
        .with_telemetry(self.telemetry);
        let (result, execute_s): (ResultSet, f64) = match exec_mode {
            ExecMode::Gpu => {
                let outcome = join.run()?;
                let s = outcome.report.response_time_s();
                (outcome.result, s)
            }
            ExecMode::Cpu => {
                let outcome = join.run_hybrid(&HybridPolicy::cpu_only())?;
                let s = outcome.hybrid.makespan_s;
                (outcome.result, s)
            }
            ExecMode::Hybrid => {
                let outcome = join.run_hybrid(&HybridPolicy::default())?;
                let s = outcome.hybrid.makespan_s;
                (outcome.result, s)
            }
        };
        let n = points.len();
        let answer = CachedAnswer {
            eps_bits: epsilon.to_bits(),
            neighbors: result.to_neighbor_lists(n),
            pairs: result.len() as u64,
            mean_neighbors: result.mean_neighbors(n),
        };
        self.cache.retain(|c| c.eps_bits != answer.eps_bits);
        self.cache.push(answer);
        self.report.launches += 1;
        self.report.execute_model_s += execute_s;
        Ok(execute_s)
    }

    fn mutate(&mut self, id: u64, op: MutateOp<N>) -> Vec<Response> {
        // Barrier semantics: queued queries see the pre-mutation dataset.
        let mut out = self.flush_queue();
        let rebuilds_before = self.grid.stats().full_rebuilds;
        let requantified_before = self.grid.stats().requantified_cells;
        let (op_name, churn) = match op {
            MutateOp::Insert(point) => ("insert", self.grid.insert(point).map(ChurnOk::Inserted)),
            MutateOp::Remove(pid) => ("remove", self.grid.remove(pid).map(ChurnOk::Removed)),
        };
        match churn {
            Err(e) => out.extend(self.reject(id, ServeError::Churn(e))),
            Ok(ok) => {
                match ok {
                    ChurnOk::Inserted(_) => self.report.inserts += 1,
                    ChurnOk::Removed(_) => self.report.removes += 1,
                }
                // New epoch: cached answers describe the old dataset.
                self.cache.clear();
                let stats = self.grid.stats();
                let reindex = if stats.full_rebuilds > rebuilds_before {
                    "rebuild"
                } else {
                    "incremental"
                };
                self.telemetry.record(
                    Event::new("serve", "reindex")
                        .str("op", op_name)
                        .str("kind", reindex)
                        .u64("dirty", self.grid.pending_dirty() as u64)
                        .u64(
                            "requantified_cells",
                            stats.requantified_cells - requantified_before,
                        )
                        .u64("points", self.grid.len() as u64),
                );
                self.telemetry.record(
                    Event::new("serve", "request")
                        .str("op", op_name)
                        .u64("id", id)
                        .bool("ok", true),
                );
                let reply = match ok {
                    ChurnOk::Inserted(pid) => Reply::Inserted {
                        point_id: pid,
                        reindex,
                    },
                    ChurnOk::Removed(moved_id) => Reply::Removed {
                        point_id: match op {
                            MutateOp::Remove(pid) => pid,
                            MutateOp::Insert(_) => unreachable!(),
                        },
                        moved_id,
                        reindex,
                    },
                };
                out.push(Response { id, reply });
            }
        }
        out
    }

    /// Parses one line of the strict-JSON request protocol, executes it,
    /// and returns the response lines (strict JSON, one per response).
    ///
    /// Blank lines produce no output. A malformed line consumes a request
    /// id and answers with a single `"kind": "bad_request"` error line —
    /// the session itself never dies on bad input.
    pub fn handle_line(&mut self, line: &str) -> Vec<String> {
        if line.trim().is_empty() {
            return Vec::new();
        }
        match self.parse_request(line) {
            Ok(req) => self
                .request(req)
                .iter()
                .map(Response::to_json_line)
                .collect(),
            Err(msg) => {
                let id = self.next_id;
                self.next_id += 1;
                self.report.requests += 1;
                self.reject(id, ServeError::BadRequest(msg))
                    .iter()
                    .map(Response::to_json_line)
                    .collect()
            }
        }
    }

    fn parse_request(&self, line: &str) -> Result<Request<N>, String> {
        let doc = json::parse(line)?;
        let op = doc
            .get("op")
            .and_then(json::JsonValue::as_str)
            .ok_or_else(|| "missing \"op\"".to_string())?;
        let point_id = |key: &str| -> Result<u32, String> {
            doc.get(key)
                .and_then(json::JsonValue::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| format!("{op:?} needs a u32 {key:?}"))
        };
        let eps = || -> Result<f32, String> {
            doc.get("eps")
                .and_then(json::JsonValue::as_f64)
                .map(|v| v as f32)
                .ok_or_else(|| format!("{op:?} needs a numeric \"eps\""))
        };
        match op {
            "query" => Ok(Request::Query {
                point_id: point_id("point_id")?,
                epsilon: eps()?,
            }),
            "join" => Ok(Request::Join { epsilon: eps()? }),
            "insert" => {
                let coords = doc
                    .get("point")
                    .and_then(json::JsonValue::as_array)
                    .ok_or_else(|| "\"insert\" needs a \"point\" array".to_string())?;
                if coords.len() != N {
                    return Err(format!(
                        "\"point\" has {} coordinates but the dataset is {N}-dimensional",
                        coords.len()
                    ));
                }
                let mut point = [0.0f32; N];
                for (slot, value) in point.iter_mut().zip(coords) {
                    *slot = value
                        .as_f64()
                        .ok_or_else(|| "\"point\" coordinates must be numbers".to_string())?
                        as f32;
                }
                Ok(Request::Insert { point })
            }
            "remove" => Ok(Request::Remove {
                point_id: point_id("point_id")?,
            }),
            "flush" => Ok(Request::Flush),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

enum MutateOp<const N: usize> {
    Insert(Point<N>),
    Remove(u32),
}

enum ChurnOk {
    Inserted(u32),
    Removed(Option<u32>),
}

fn grid_build_message(e: &GridBuildError) -> String {
    format!("cannot index the initial dataset: {e:?}")
}

/// `(p50, p99)` of `samples` (0.0 when empty).
fn percentiles(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let at = |q: f64| {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    };
    (at(0.50), at(0.99))
}

impl Response {
    /// Serializes the response as one strict-JSON line (no trailing
    /// newline). Non-finite floats serialize as `null`, mirroring the
    /// telemetry writer.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(out, "{{\"id\": {}", self.id);
        match &self.reply {
            Reply::Neighbors {
                point_id,
                epsilon,
                neighbors,
                latency,
                coalesced,
                cache_hit,
            } => {
                out.push_str(", \"op\": \"query\", \"ok\": true");
                let _ = write!(out, ", \"point_id\": {point_id}");
                json_f64(&mut out, "eps", f64::from(*epsilon));
                out.push_str(", \"neighbors\": [");
                for (i, n) in neighbors.iter().enumerate() {
                    let _ = write!(out, "{}{n}", if i == 0 { "" } else { ", " });
                }
                out.push(']');
                json_latency(&mut out, latency);
                let _ = write!(
                    out,
                    ", \"coalesced\": {coalesced}, \"cache_hit\": {cache_hit}"
                );
            }
            Reply::JoinSummary {
                epsilon,
                pairs,
                mean_neighbors,
                latency,
                coalesced,
                cache_hit,
            } => {
                out.push_str(", \"op\": \"join\", \"ok\": true");
                json_f64(&mut out, "eps", f64::from(*epsilon));
                let _ = write!(out, ", \"pairs\": {pairs}");
                json_f64(&mut out, "mean_neighbors", *mean_neighbors);
                json_latency(&mut out, latency);
                let _ = write!(
                    out,
                    ", \"coalesced\": {coalesced}, \"cache_hit\": {cache_hit}"
                );
            }
            Reply::Inserted { point_id, reindex } => {
                let _ = write!(
                    out,
                    ", \"op\": \"insert\", \"ok\": true, \"point_id\": {point_id}, \
                     \"reindex\": \"{reindex}\""
                );
            }
            Reply::Removed {
                point_id,
                moved_id,
                reindex,
            } => {
                let _ = write!(
                    out,
                    ", \"op\": \"remove\", \"ok\": true, \"point_id\": {point_id}, \
                     \"moved_id\": "
                );
                match moved_id {
                    Some(m) => {
                        let _ = write!(out, "{m}");
                    }
                    None => out.push_str("null"),
                }
                let _ = write!(out, ", \"reindex\": \"{reindex}\"");
            }
            Reply::Flushed { executed } => {
                let _ = write!(
                    out,
                    ", \"op\": \"flush\", \"ok\": true, \"executed\": {executed}"
                );
            }
            Reply::Stats(r) => {
                out.push_str(", \"op\": \"stats\", \"ok\": true");
                let _ = write!(
                    out,
                    ", \"requests\": {}, \"queries\": {}, \"joins\": {}, \"inserts\": {}, \
                     \"removes\": {}, \"rejected\": {}, \"errors\": {}, \"launches\": {}, \
                     \"coalesced_requests\": {}, \"cache_hits\": {}, \
                     \"incremental_reindexes\": {}, \"full_rebuilds\": {}, \
                     \"requantified_cells\": {}",
                    r.requests,
                    r.queries,
                    r.joins,
                    r.inserts,
                    r.removes,
                    r.rejected,
                    r.errors,
                    r.launches,
                    r.coalesced_requests,
                    r.cache_hits,
                    r.incremental_reindexes,
                    r.full_rebuilds,
                    r.requantified_cells
                );
                json_f64(&mut out, "execute_model_s", r.execute_model_s);
                json_f64(&mut out, "queue_p50_s", r.queue_p50_s);
                json_f64(&mut out, "queue_p99_s", r.queue_p99_s);
                json_f64(&mut out, "execute_p50_s", r.execute_p50_s);
                json_f64(&mut out, "execute_p99_s", r.execute_p99_s);
                json_f64(&mut out, "total_p50_s", r.total_p50_s);
                json_f64(&mut out, "total_p99_s", r.total_p99_s);
            }
            Reply::ShuttingDown => {
                out.push_str(", \"op\": \"shutdown\", \"ok\": true");
            }
            Reply::Error { message, kind } => {
                out.push_str(", \"ok\": false, \"error\": ");
                json_string(&mut out, message);
                let _ = write!(out, ", \"kind\": \"{kind}\"");
            }
        }
        out.push('}');
        out
    }
}

fn json_latency(out: &mut String, latency: &Latency) {
    json_f64(out, "queue_s", latency.queue_s);
    json_f64(out, "execute_s", latency.execute_s);
    json_f64(out, "total_s", latency.total_s);
}

fn json_f64(out: &mut String, key: &str, v: f64) {
    let _ = write!(out, ", \"{key}\": ");
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_join;

    fn dataset() -> Vec<Point<2>> {
        let mut pts = Vec::new();
        for i in 0..40u32 {
            let a = i as f32 * 0.37;
            pts.push([a.sin() * 5.0, (a * 1.7).cos() * 5.0]);
        }
        pts
    }

    fn session<'a>(cfg: ServeConfig) -> ServeSession<'a, 2> {
        ServeSession::new(dataset(), SelfJoinConfig::new(0.8), cfg).unwrap()
    }

    fn expect_neighbors(resp: &Response) -> (&Vec<u32>, Latency, u64, bool) {
        match &resp.reply {
            Reply::Neighbors {
                neighbors,
                latency,
                coalesced,
                cache_hit,
                ..
            } => (neighbors, *latency, *coalesced, *cache_hit),
            other => panic!("expected Neighbors, got {other:?}"),
        }
    }

    #[test]
    fn coalesced_queries_are_exact_and_share_one_launch() {
        let mut s = session(ServeConfig::default());
        assert!(s
            .request(Request::Query {
                point_id: 3,
                epsilon: 0.8
            })
            .is_empty());
        assert!(s
            .request(Request::Query {
                point_id: 7,
                epsilon: 0.8
            })
            .is_empty());
        let out = s.request(Request::Flush);
        assert_eq!(out.len(), 3);
        let oracle = ResultSet::from_pairs(brute_force_join(&dataset(), 0.8)).to_neighbor_lists(40);
        for (resp, pid) in out[..2].iter().zip([3usize, 7]) {
            let (neighbors, latency, coalesced, cache_hit) = expect_neighbors(resp);
            assert_eq!(neighbors, &oracle[pid]);
            assert_eq!(coalesced, 2);
            assert!(!cache_hit);
            assert!(latency.execute_s > 0.0);
        }
        let r = s.report();
        assert_eq!(r.launches, 1);
        assert_eq!(r.coalesced_requests, 2);
    }

    #[test]
    fn cache_answers_repeat_flushes_until_a_mutation() {
        let mut s = session(ServeConfig::default());
        s.request(Request::Query {
            point_id: 0,
            epsilon: 0.8,
        });
        s.request(Request::Flush);
        s.request(Request::Query {
            point_id: 0,
            epsilon: 0.8,
        });
        let out = s.request(Request::Flush);
        let (_, latency, _, cache_hit) = expect_neighbors(&out[0]);
        assert!(cache_hit);
        assert_eq!(latency.execute_s, 0.0);
        // A mutation invalidates the cache.
        s.request(Request::Insert {
            point: [0.01, 0.01],
        });
        s.request(Request::Query {
            point_id: 0,
            epsilon: 0.8,
        });
        let out = s.request(Request::Flush);
        let (_, _, _, cache_hit) = expect_neighbors(&out[0]);
        assert!(!cache_hit);
        assert_eq!(s.report().launches, 2);
    }

    #[test]
    fn queue_overflow_is_a_typed_rejection() {
        let mut s = session(ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        s.request(Request::Query {
            point_id: 0,
            epsilon: 0.8,
        });
        s.request(Request::Query {
            point_id: 1,
            epsilon: 0.8,
        });
        let out = s.request(Request::Query {
            point_id: 2,
            epsilon: 0.8,
        });
        assert_eq!(out.len(), 1);
        match &out[0].reply {
            Reply::Error { kind, .. } => assert_eq!(*kind, "queue_full"),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(s.report().rejected, 1);
        // The queued pair still executes fine.
        assert_eq!(s.request(Request::Flush).len(), 3);
    }

    #[test]
    fn invalid_epsilon_and_unknown_points_are_rejected_before_queueing() {
        let mut s = session(ServeConfig::default());
        for (req, kind) in [
            (
                Request::Query {
                    point_id: 0,
                    epsilon: f32::NAN,
                },
                "bad_epsilon",
            ),
            (
                Request::Query {
                    point_id: 0,
                    epsilon: -1.0,
                },
                "bad_epsilon",
            ),
            (Request::Join { epsilon: 0.0 }, "bad_epsilon"),
            (
                Request::Query {
                    point_id: 999,
                    epsilon: 0.5,
                },
                "unknown_point",
            ),
            (Request::Remove { point_id: 999 }, "unknown_point"),
        ] {
            let out = s.request(req);
            match &out[out.len() - 1].reply {
                Reply::Error { kind: k, .. } => assert_eq!(*k, kind),
                other => panic!("expected {kind}, got {other:?}"),
            }
        }
        assert_eq!(s.report().errors, 5);
        assert_eq!(s.report().launches, 0);
    }

    #[test]
    fn churn_then_query_stays_exact_at_foreign_epsilon() {
        let mut s = session(ServeConfig::default());
        s.request(Request::Insert { point: [0.3, -0.2] });
        s.request(Request::Remove { point_id: 5 });
        // ε different from the maintained index's ε forces the throwaway-
        // grid path; the answer must still be exact.
        s.request(Request::Query {
            point_id: 2,
            epsilon: 1.3,
        });
        let out = s.request(Request::Flush);
        let (neighbors, ..) = expect_neighbors(&out[0]);
        let mut pts = dataset();
        pts.push([0.3, -0.2]);
        pts.swap_remove(5);
        let oracle =
            ResultSet::from_pairs(brute_force_join(&pts, 1.3)).to_neighbor_lists(pts.len());
        assert_eq!(neighbors, &oracle[2]);
    }

    #[test]
    fn serial_mode_launches_per_request() {
        let mut s = session(ServeConfig {
            coalesce: false,
            ..ServeConfig::default()
        });
        let out = s.request(Request::Query {
            point_id: 0,
            epsilon: 0.8,
        });
        assert_eq!(out.len(), 1);
        s.request(Request::Query {
            point_id: 1,
            epsilon: 0.8,
        });
        s.request(Request::Query {
            point_id: 2,
            epsilon: 0.8,
        });
        let r = s.report();
        assert_eq!(r.launches, 3);
        assert_eq!(r.cache_hits, 0);
        assert_eq!(r.coalesced_requests, 0);
    }

    #[test]
    fn line_protocol_round_trips_and_survives_garbage() {
        let sink = sj_telemetry::JsonTelemetry::new("serve-unit");
        let mut s = session(ServeConfig::default()).with_telemetry(&sink);
        assert!(s.handle_line("   ").is_empty());
        let err = s.handle_line("{not json");
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("\"kind\": \"bad_request\""), "{}", err[0]);
        let err = s.handle_line("{\"op\": \"warp\"}");
        assert!(err[0].contains("\"kind\": \"bad_request\""));
        assert!(s
            .handle_line("{\"op\": \"query\", \"point_id\": 4, \"eps\": 0.8}")
            .is_empty());
        let lines = s.handle_line("{\"op\": \"insert\", \"point\": [0.5, 0.5]}");
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"op\": \"query\""));
        assert!(lines[1].contains("\"op\": \"insert\""));
        let lines = s.handle_line("{\"op\": \"stats\"}");
        assert!(lines[0].contains("\"op\": \"stats\""));
        let lines = s.handle_line("{\"op\": \"shutdown\"}");
        assert!(lines[0].contains("\"op\": \"shutdown\""));
        assert!(s.is_shut_down());
        // Every response line is strict JSON.
        for line in s.handle_line("{\"op\": \"stats\"}") {
            json::parse(&line).unwrap();
        }
        assert!(!sink.events_named("serve", "request").is_empty());
        assert!(!sink.events_named("serve", "reindex").is_empty());
    }

    #[test]
    fn shutdown_flushes_the_queue_first() {
        let mut s = session(ServeConfig::default());
        s.request(Request::Join { epsilon: 0.8 });
        let out = s.request(Request::Shutdown);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].reply, Reply::JoinSummary { .. }));
        assert!(matches!(out[1].reply, Reply::ShuttingDown));
    }
}
