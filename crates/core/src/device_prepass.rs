//! The device sort/scan pre-pass behind [`SortBackend::Device`].
//!
//! When the sort backend is `Device`, the planner's sorts (SORTBYWL batch
//! sorts, the WORKQUEUE cell ordering) and prefix sums (balanced queue cuts,
//! workload-aware fleet cuts) run as warp-kernel primitive chains from
//! [`warpsim::primitives`] instead of host `sort_unstable_by`/folds. The
//! primitives are bit-identical to the host oracles (differentially tested
//! in `tests/device_primitives_differential.rs`), so **planning results
//! never depend on the backend** — only the cost accounting in the
//! [`PrePassReport`] and the `sort`/`scan` phase telemetry do.
//!
//! Pre-pass launches are admitted through the same fault plane as the join's
//! batch kernels. A transient launch failure is retried under the join's
//! [`RetryPolicy`] (geometric backoff, accounted in model seconds); any
//! other failure — or retry exhaustion — **degrades the pre-pass to the host
//! path** rather than failing the join: planning is a pure function the host
//! can always compute, so losing the device during planning costs only the
//! device-resident speedup, never correctness. The degradation is recorded
//! on the report and as an `executor`/`prepass_degraded` telemetry event.
//!
//! [`SortBackend::Device`]: crate::config::SortBackend::Device

use sj_telemetry::{Event, Telemetry};
use warpsim::{
    device_exclusive_scan, device_radix_argsort, FaultPlane, GpuConfig, LaunchError, LaunchOptions,
    PrimitiveReport, StepMode, DEFAULT_DIGIT_BITS,
};

use crate::config::RetryPolicy;

/// Cost and recovery accounting of the device sort/scan pre-pass of one
/// join. Present on [`JoinReport::prepass`](crate::JoinReport::prepass) only
/// for [`SortBackend::Device`](crate::SortBackend::Device) runs.
///
/// Pre-pass model seconds are reported here and in telemetry but are **not**
/// folded into [`JoinReport::response_time_s`](crate::JoinReport::response_time_s):
/// keeping the recorded tables backend-invariant is what lets CI diff the
/// experiment output between backends (and what keeps the Host default's
/// numbers untouched).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrePassReport {
    /// Model seconds spent in radix-sort kernel chains.
    pub sort_model_s: f64,
    /// Model cycles of the sort chains.
    pub sort_cycles: u64,
    /// Kernel launches issued by the sort chains.
    pub sort_launches: u64,
    /// Radix digit passes executed across all sort invocations.
    pub sort_passes: u32,
    /// Sort-primitive invocations (one per batch under SORTBYWL, one cell
    /// ordering under WORKQUEUE).
    pub sort_invocations: u32,
    /// Model seconds spent in standalone exclusive-scan chains (the scans
    /// embedded in sort passes are accounted under `sort_*`).
    pub scan_model_s: f64,
    /// Model cycles of the standalone scan chains.
    pub scan_cycles: u64,
    /// Kernel launches issued by the standalone scan chains.
    pub scan_launches: u64,
    /// Standalone scan invocations (balanced queue cut, fleet cut).
    pub scan_invocations: u32,
    /// Transient pre-pass launch failures that were retried.
    pub transient_retries: u32,
    /// Host backoff spent on those retries, model seconds.
    pub backoff_s: f64,
    /// Whether the pre-pass fell back to the host path after a
    /// non-transient fault or retry exhaustion.
    pub degraded_to_host: bool,
}

impl PrePassReport {
    /// Total pre-pass model seconds (sort + scan chains).
    pub fn model_s(&self) -> f64 {
        self.sort_model_s + self.scan_model_s
    }

    fn absorb_sort(&mut self, r: &PrimitiveReport) {
        self.sort_invocations += 1;
        self.sort_model_s += r.model_s;
        self.sort_cycles += r.elapsed_cycles;
        self.sort_launches += r.launches;
        self.sort_passes += r.passes;
    }

    fn absorb_scan(&mut self, r: &PrimitiveReport) {
        self.scan_invocations += 1;
        self.scan_model_s += r.model_s;
        self.scan_cycles += r.elapsed_cycles;
        self.scan_launches += r.launches;
    }
}

/// The SORTBYWL composite key of one point: ascending radix order on
/// `((max_w − w) << 32) | id` reproduces "non-increasing workload, ties by
/// ascending id" exactly (ids are unique, so stability is not even needed).
fn sortbywl_key(max_w: u64, w: u64, id: u32) -> u128 {
    (((max_w - w) as u128) << 32) | id as u128
}

/// Sorts `pids` by non-increasing workload (ties ascending id) through the
/// device radix-argsort chain — the device twin of
/// [`WorkloadProfile::sort_by_workload`](crate::WorkloadProfile::sort_by_workload).
pub fn device_sort_by_workload(
    gpu: &GpuConfig,
    per_point: &[u64],
    pids: &mut [u32],
    opts: &LaunchOptions<'_>,
) -> Result<PrimitiveReport, LaunchError> {
    let max_w = pids
        .iter()
        .map(|&p| per_point[p as usize])
        .max()
        .unwrap_or(0);
    let keys: Vec<u128> = pids
        .iter()
        .map(|&p| sortbywl_key(max_w, per_point[p as usize], p))
        .collect();
    let (perm, report) = device_radix_argsort(gpu, &keys, DEFAULT_DIGIT_BITS, opts)?;
    let sorted: Vec<u32> = perm.iter().map(|&i| pids[i as usize]).collect();
    pids.copy_from_slice(&sorted);
    Ok(report)
}

/// Computes the WORKQUEUE cell ordering (cells by non-increasing workload,
/// ties ascending cell index) on the device — the device twin of
/// [`WorkloadProfile::cell_order`](crate::WorkloadProfile::cell_order).
pub fn device_cell_order(
    gpu: &GpuConfig,
    per_cell: &[u64],
    opts: &LaunchOptions<'_>,
) -> Result<(Vec<u32>, PrimitiveReport), LaunchError> {
    let max_w = per_cell.iter().copied().max().unwrap_or(0);
    let keys: Vec<u128> = per_cell
        .iter()
        .enumerate()
        .map(|(c, &w)| sortbywl_key(max_w, w, c as u32))
        .collect();
    // Keys are laid out in cell-index order, so the argsort permutation *is*
    // the cell order.
    device_radix_argsort(gpu, &keys, DEFAULT_DIGIT_BITS, opts)
}

/// Computes the inclusive prefix (`out[i] = values[0] + … + values[i]`) from
/// the device exclusive-scan chain. Identical to the host `u128` fold as
/// long as the running total fits `u64` — which the workload totals the
/// planner scans always do ([`WorkloadProfile::total`] is itself a `u64`
/// sum).
///
/// [`WorkloadProfile::total`]: crate::WorkloadProfile::total
pub fn device_inclusive_prefix(
    gpu: &GpuConfig,
    values: &[u64],
    opts: &LaunchOptions<'_>,
) -> Result<(Vec<u128>, PrimitiveReport), LaunchError> {
    let (exclusive, report) = device_exclusive_scan(gpu, values, opts)?;
    let inclusive = exclusive
        .iter()
        .zip(values)
        .map(|(&e, &v)| e as u128 + v as u128)
        .collect();
    Ok((inclusive, report))
}

/// The executor's pre-pass driver: runs primitives with retry/degrade
/// semantics and accumulates the [`PrePassReport`].
pub(crate) struct DevicePrepass<'a> {
    gpu: &'a GpuConfig,
    retry: &'a RetryPolicy,
    step_mode: StepMode,
    fault: Option<&'a FaultPlane>,
    telemetry: &'a dyn Telemetry,
    /// Accounting so far; taken by the executor when planning finishes.
    pub stats: PrePassReport,
}

impl<'a> DevicePrepass<'a> {
    pub fn new(
        gpu: &'a GpuConfig,
        retry: &'a RetryPolicy,
        step_mode: StepMode,
        fault: Option<&'a FaultPlane>,
        telemetry: &'a dyn Telemetry,
    ) -> Self {
        Self {
            gpu,
            retry,
            step_mode,
            fault,
            telemetry,
            stats: PrePassReport::default(),
        }
    }

    /// Runs one primitive invocation with bounded transient retry. Returns
    /// `None` — after marking the pre-pass degraded and emitting the
    /// `prepass_degraded` event — when the device path is unavailable; the
    /// caller then computes the same result on the host.
    fn attempt<T>(
        &mut self,
        primitive: &'static str,
        site: &'static str,
        run: impl Fn(&LaunchOptions<'_>) -> Result<T, LaunchError>,
    ) -> Option<T> {
        if self.stats.degraded_to_host {
            // A lost device stays lost: don't hammer the plane once the
            // pre-pass has fallen back to the host.
            return None;
        }
        let mut attempt = 0u32;
        loop {
            let mut opts = LaunchOptions::default().with_step_mode(self.step_mode);
            if let Some(plane) = self.fault {
                opts = opts.with_fault_plane(plane);
            }
            match run(&opts) {
                Ok(v) => return Some(v),
                Err(LaunchError::Transient(_)) if attempt < self.retry.max_transient_retries => {
                    attempt += 1;
                    self.stats.transient_retries += 1;
                    self.stats.backoff_s += self
                        .retry
                        .backoff_for(self.retry.transient_backoff_s, attempt);
                }
                Err(err) => {
                    self.stats.degraded_to_host = true;
                    if self.telemetry.is_enabled() {
                        self.telemetry.record(
                            Event::new("executor", "prepass_degraded")
                                .str("primitive", primitive)
                                .str("site", site)
                                .str("class", err.class()),
                        );
                    }
                    return None;
                }
            }
        }
    }

    /// Device SORTBYWL sort of `pids`; `false` means the caller must run the
    /// host sort instead.
    pub fn sort_by_workload(
        &mut self,
        per_point: &[u64],
        pids: &mut [u32],
        site: &'static str,
    ) -> bool {
        let outcome = self.attempt("radix_sort", site, |opts| {
            let mut scratch = pids.to_vec();
            device_sort_by_workload(self.gpu, per_point, &mut scratch, opts)
                .map(|report| (scratch, report))
        });
        match outcome {
            Some((sorted, report)) => {
                pids.copy_from_slice(&sorted);
                self.stats.absorb_sort(&report);
                true
            }
            None => false,
        }
    }

    /// Device WORKQUEUE cell ordering; `None` means host fallback.
    pub fn cell_order(&mut self, per_cell: &[u64], site: &'static str) -> Option<Vec<u32>> {
        let (order, report) = self.attempt("radix_sort", site, |opts| {
            device_cell_order(self.gpu, per_cell, opts)
        })?;
        self.stats.absorb_sort(&report);
        Some(order)
    }

    /// Device inclusive workload prefix; `None` means host fallback.
    pub fn inclusive_prefix(&mut self, values: &[u64], site: &'static str) -> Option<Vec<u128>> {
        let (prefix, report) = self.attempt("exclusive_scan", site, |opts| {
            device_inclusive_prefix(self.gpu, values, opts)
        })?;
        self.stats.absorb_scan(&report);
        Some(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadProfile;
    use sj_telemetry::NULL;
    use warpsim::{FaultSchedule, GpuConfig};

    fn heavy_tail_workloads(n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| {
                if i % 17 == 0 {
                    5000
                } else {
                    (i as u64 * 13) % 40
                }
            })
            .collect()
    }

    #[test]
    fn device_sort_matches_host_oracle() {
        let gpu = GpuConfig::small_test();
        let per_point = heavy_tail_workloads(300);
        let profile = WorkloadProfile::from_per_point(per_point.clone());
        let mut host: Vec<u32> = (0..300u32).collect();
        profile.sort_by_workload(&mut host);
        let mut device: Vec<u32> = (0..300u32).collect();
        device_sort_by_workload(&gpu, &per_point, &mut device, &LaunchOptions::default()).unwrap();
        assert_eq!(device, host);
    }

    #[test]
    fn device_cell_order_matches_host_oracle() {
        let gpu = GpuConfig::small_test();
        let per_cell = heavy_tail_workloads(97);
        let mut host: Vec<u32> = (0..97u32).collect();
        host.sort_unstable_by_key(|&c| (std::cmp::Reverse(per_cell[c as usize]), c));
        let (device, report) =
            device_cell_order(&gpu, &per_cell, &LaunchOptions::default()).unwrap();
        assert_eq!(device, host);
        assert!(report.model_s > 0.0);
    }

    #[test]
    fn device_prefix_matches_host_fold() {
        let gpu = GpuConfig::small_test();
        let values = heavy_tail_workloads(211);
        let (device, _) =
            device_inclusive_prefix(&gpu, &values, &LaunchOptions::default()).unwrap();
        let mut acc = 0u128;
        let host: Vec<u128> = values
            .iter()
            .map(|&v| {
                acc += v as u128;
                acc
            })
            .collect();
        assert_eq!(device, host);
    }

    #[test]
    fn transient_prepass_fault_is_retried_with_backoff() {
        let gpu = GpuConfig::small_test();
        let retry = RetryPolicy::default();
        let plane = warpsim::FaultPlane::new(FaultSchedule::new().transient_at(0));
        let mut prepass =
            DevicePrepass::new(&gpu, &retry, StepMode::default(), Some(&plane), &NULL);
        let per_point = heavy_tail_workloads(64);
        let mut pids: Vec<u32> = (0..64u32).collect();
        assert!(prepass.sort_by_workload(&per_point, &mut pids, "test"));
        assert!(!prepass.stats.degraded_to_host);
        assert_eq!(prepass.stats.transient_retries, 1);
        assert!(prepass.stats.backoff_s > 0.0);
        assert_eq!(prepass.stats.sort_invocations, 1);
        let profile = WorkloadProfile::from_per_point(per_point);
        let mut host: Vec<u32> = (0..64u32).collect();
        profile.sort_by_workload(&mut host);
        assert_eq!(pids, host, "retried sort must still match the oracle");
    }

    #[test]
    fn device_loss_degrades_to_host_and_stays_degraded() {
        let gpu = GpuConfig::small_test();
        let retry = RetryPolicy::default();
        let plane = warpsim::FaultPlane::new(FaultSchedule::new().device_lost_at(0));
        let sink = sj_telemetry::JsonTelemetry::new("prepass");
        let mut prepass =
            DevicePrepass::new(&gpu, &retry, StepMode::default(), Some(&plane), &sink);
        let values = heavy_tail_workloads(32);
        assert!(prepass.inclusive_prefix(&values, "queue_cut").is_none());
        assert!(prepass.stats.degraded_to_host);
        // Follow-up invocations short-circuit to the host without touching
        // the (lost) device.
        let mut pids: Vec<u32> = (0..32u32).collect();
        assert!(!prepass.sort_by_workload(&values, &mut pids, "batch"));
        let events = sink.events_named("executor", "prepass_degraded");
        assert_eq!(events.len(), 1, "degradation is recorded exactly once");
    }
}
