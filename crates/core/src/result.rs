//! Self-join result sets.

/// The (ordered-pair) result set of a self-join.
///
/// Contains every pair `(a, b)` with `a ≠ b` and `dist(a, b) ≤ ε`, in both
/// orientations. Pair order is implementation-defined; comparisons should go
/// through [`ResultSet::sorted_pairs`] or [`ResultSet::same_pairs_as`].
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    pairs: Vec<(u32, u32)>,
}

impl ResultSet {
    /// Wraps a pair list.
    pub fn from_pairs(pairs: Vec<(u32, u32)>) -> Self {
        Self { pairs }
    }

    /// Number of ordered pairs (twice the number of matching point pairs).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the join found no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The pairs in their production order.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Appends pairs from a batch.
    pub fn extend(&mut self, pairs: &[(u32, u32)]) {
        self.pairs.extend_from_slice(pairs);
    }

    /// The pairs sorted lexicographically (for comparisons and display).
    pub fn sorted_pairs(&self) -> Vec<(u32, u32)> {
        let mut p = self.pairs.clone();
        p.sort_unstable();
        p
    }

    /// Whether two result sets contain the same pairs (as multisets).
    pub fn same_pairs_as(&self, other: &ResultSet) -> bool {
        self.sorted_pairs() == other.sorted_pairs()
    }

    /// Checks internal consistency: no self-pairs, every pair present in
    /// both orientations, no duplicates. Returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        let sorted = self.sorted_pairs();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(format!("duplicate pair {:?}", w[0]));
            }
        }
        for &(a, b) in &sorted {
            if a == b {
                return Err(format!("self-pair ({a}, {a})"));
            }
            if sorted.binary_search(&(b, a)).is_err() {
                return Err(format!("pair ({a}, {b}) missing its mirror ({b}, {a})"));
            }
        }
        Ok(())
    }

    /// Per-point neighbor counts (how many `b` for each `a`).
    pub fn neighbor_counts(&self, num_points: usize) -> Vec<u64> {
        let mut counts = vec![0u64; num_points];
        for &(a, _) in &self.pairs {
            counts[a as usize] += 1;
        }
        counts
    }

    /// Builds per-point adjacency lists — the form most consumers
    /// (clustering, kNN post-filtering, graph construction) actually want.
    /// Each list is sorted ascending.
    pub fn to_neighbor_lists(&self, num_points: usize) -> Vec<Vec<u32>> {
        let mut lists = vec![Vec::new(); num_points];
        for &(a, b) in &self.pairs {
            lists[a as usize].push(b);
        }
        for list in &mut lists {
            list.sort_unstable();
        }
        lists
    }

    /// The average number of neighbors per point.
    pub fn mean_neighbors(&self, num_points: usize) -> f64 {
        if num_points == 0 {
            0.0
        } else {
            self.pairs.len() as f64 / num_points as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_and_equality() {
        let a = ResultSet::from_pairs(vec![(1, 0), (0, 1)]);
        let b = ResultSet::from_pairs(vec![(0, 1), (1, 0)]);
        assert!(a.same_pairs_as(&b));
        assert_eq!(a.sorted_pairs(), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn validate_accepts_well_formed_sets() {
        let r = ResultSet::from_pairs(vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
        assert!(r.validate().is_ok());
        assert!(ResultSet::default().validate().is_ok());
    }

    #[test]
    fn validate_rejects_self_pair() {
        let r = ResultSet::from_pairs(vec![(3, 3)]);
        assert!(r.validate().unwrap_err().contains("self-pair"));
    }

    #[test]
    fn validate_rejects_missing_mirror() {
        let r = ResultSet::from_pairs(vec![(0, 1)]);
        assert!(r.validate().unwrap_err().contains("mirror"));
    }

    #[test]
    fn validate_rejects_duplicates() {
        let r = ResultSet::from_pairs(vec![(0, 1), (0, 1), (1, 0), (1, 0)]);
        assert!(r.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn neighbor_counts() {
        let r = ResultSet::from_pairs(vec![(0, 1), (1, 0), (0, 2), (2, 0)]);
        assert_eq!(r.neighbor_counts(3), vec![2, 1, 1]);
        assert!((r.mean_neighbors(3) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn neighbor_lists_are_sorted_and_symmetric() {
        let r = ResultSet::from_pairs(vec![(0, 2), (2, 0), (0, 1), (1, 0), (1, 2), (2, 1)]);
        let lists = r.to_neighbor_lists(4);
        assert_eq!(lists[0], vec![1, 2]);
        assert_eq!(lists[1], vec![0, 2]);
        assert_eq!(lists[2], vec![0, 1]);
        assert!(lists[3].is_empty());
        for (a, list) in lists.iter().enumerate() {
            for &b in list {
                assert!(lists[b as usize].contains(&(a as u32)));
            }
        }
    }
}
