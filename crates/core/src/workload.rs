//! Workload quantification and workload-ordered datasets (§III-C).
//!
//! The paper quantifies the workload of a query point as the number of
//! distance calculations it will perform in the refine step, i.e. the total
//! number of candidate points in the `3^n` window around its home cell.
//! Since all points of a cell share the same window, workload is computed
//! **per cell** and inherited by the cell's points.

use std::cmp::Reverse;

use epsgrid::GridIndex;

/// Workload of one non-empty cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellWorkload {
    /// Index into the grid's non-empty cell list.
    pub cell_idx: u32,
    /// Candidate points in the cell's neighbor window (= distance
    /// calculations each of the cell's points performs under FullWindow).
    pub candidates: u64,
    /// Points stored in the cell.
    pub points: u32,
}

/// The workload quantification of a whole indexed dataset.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    per_cell: Vec<u64>,
    per_point: Vec<u64>,
}

impl WorkloadProfile {
    /// Quantifies workloads from the grid index.
    pub fn compute<const N: usize>(grid: &GridIndex<N>) -> Self {
        let per_cell: Vec<u64> = (0..grid.num_cells())
            .map(|ci| grid.window_candidate_count(ci))
            .collect();
        let mut per_point = vec![0u64; grid.num_points()];
        for (ci, &w) in per_cell.iter().enumerate() {
            for &pid in grid.cell_points(ci) {
                per_point[pid as usize] = w;
            }
        }
        Self {
            per_cell,
            per_point,
        }
    }

    /// Workload of dataset point `pid`.
    pub fn point_workload(&self, pid: u32) -> u64 {
        self.per_point[pid as usize]
    }

    /// Workload of non-empty cell `cell_idx`.
    pub fn cell_workload(&self, cell_idx: usize) -> u64 {
        self.per_cell[cell_idx]
    }

    /// Per-point workloads, indexed by dataset id.
    pub fn per_point(&self) -> &[u64] {
        &self.per_point
    }

    /// Per-cell workloads, indexed by non-empty cell index.
    pub fn per_cell(&self) -> &[u64] {
        &self.per_cell
    }

    /// Builds a profile directly from per-point workloads (no grid), for
    /// differential tests that exercise the sort paths on arbitrary key
    /// distributions. Cell workloads are left empty.
    pub fn from_per_point(per_point: Vec<u64>) -> Self {
        Self {
            per_cell: Vec::new(),
            per_point,
        }
    }

    /// Rebuilds a profile from externally maintained per-cell workloads
    /// (e.g. the incrementally re-quantified counts of
    /// [`epsgrid::DynamicGrid`]), inheriting each cell's workload to its
    /// points exactly as [`Self::compute`] does. Returns `None` when the
    /// slice does not line up with the grid's cell list.
    pub fn from_per_cell<const N: usize>(grid: &GridIndex<N>, per_cell: &[u64]) -> Option<Self> {
        if per_cell.len() != grid.num_cells() {
            return None;
        }
        let mut per_point = vec![0u64; grid.num_points()];
        for (ci, &w) in per_cell.iter().enumerate() {
            for &pid in grid.cell_points(ci) {
                per_point[pid as usize] = w;
            }
        }
        Some(Self {
            per_cell: per_cell.to_vec(),
            per_point,
        })
    }

    /// Total workload over the whole dataset (total distance calculations a
    /// FullWindow execution performs).
    pub fn total(&self) -> u64 {
        self.per_point.iter().sum()
    }

    /// Sorts a set of point ids by non-increasing workload (ties broken by
    /// ascending id, keeping the order deterministic) — the SORTBYWL
    /// transformation applied to one batch's points.
    pub fn sort_by_workload(&self, pids: &mut [u32]) {
        // Key-based sort: `(Reverse(workload), id)` is a total order by
        // construction, so determinism cannot silently regress if the
        // comparator is edited (see the identical-order regression test).
        pids.sort_unstable_by_key(|&p| (Reverse(self.per_point[p as usize]), p));
    }

    /// Builds the paper's `D'`: the whole dataset reordered cell-by-cell
    /// from the heaviest-workload cell to the lightest (§III-C: "assigning
    /// points from the cell with the greatest workload at the beginning of
    /// a new array `D'`"). The WORKQUEUE's global counter walks this array.
    pub fn sorted_dataset<const N: usize>(&self, grid: &GridIndex<N>) -> Vec<u32> {
        expand_cell_order(grid, &self.cell_order())
    }

    /// The non-empty cell indices sorted by non-increasing workload, ties by
    /// ascending cell index — the cell-level ordering behind
    /// [`sorted_dataset`](Self::sorted_dataset), exposed so the device sort
    /// backend can reproduce it through the radix-argsort kernel chain.
    pub fn cell_order(&self) -> Vec<u32> {
        let mut cell_order: Vec<u32> = (0..self.per_cell.len() as u32).collect();
        cell_order.sort_unstable_by_key(|&c| (Reverse(self.per_cell[c as usize]), c));
        cell_order
    }

    /// Per-cell workload summary, heaviest first.
    pub fn cell_summary<const N: usize>(&self, grid: &GridIndex<N>) -> Vec<CellWorkload> {
        let mut cells: Vec<CellWorkload> = (0..grid.num_cells())
            .map(|ci| CellWorkload {
                cell_idx: ci as u32,
                candidates: self.per_cell[ci],
                points: grid.cell_points(ci).len() as u32,
            })
            .collect();
        cells.sort_unstable_by_key(|c| (Reverse(c.candidates), c.cell_idx));
        cells
    }
}

/// Concatenates the points of `cell_order`'s cells into the paper's `D'`
/// array — the expansion step shared by the host and device sort backends.
pub fn expand_cell_order<const N: usize>(grid: &GridIndex<N>, cell_order: &[u32]) -> Vec<u32> {
    let mut order = Vec::with_capacity(grid.num_points());
    for &ci in cell_order {
        order.extend_from_slice(grid.cell_points(ci as usize));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use epsgrid::Point;

    /// Two dense clusters of different sizes plus an isolated point.
    fn skewed_points() -> Vec<Point<2>> {
        let mut pts = Vec::new();
        for i in 0..8 {
            pts.push([0.5 + 0.01 * i as f32, 0.5]);
        }
        for i in 0..3 {
            pts.push([5.5 + 0.01 * i as f32, 5.5]);
        }
        pts.push([9.5, 9.5]);
        pts
    }

    #[test]
    fn workload_reflects_density() {
        let pts = skewed_points();
        let grid = GridIndex::build(&pts, 1.0).unwrap();
        let profile = WorkloadProfile::compute(&grid);
        // Dense-cluster points have workload 8, small cluster 3, isolated 1.
        assert_eq!(profile.point_workload(0), 8);
        assert_eq!(profile.point_workload(8), 3);
        assert_eq!(profile.point_workload(11), 1);
        assert_eq!(profile.total(), 8 * 8 + 3 * 3 + 1);
    }

    #[test]
    fn per_point_matches_home_cell() {
        let pts = skewed_points();
        let grid = GridIndex::build(&pts, 1.0).unwrap();
        let profile = WorkloadProfile::compute(&grid);
        for pid in 0..pts.len() as u32 {
            let home = grid.home_cell_of(pid as usize);
            assert_eq!(profile.point_workload(pid), profile.cell_workload(home));
        }
    }

    #[test]
    fn sort_by_workload_is_non_increasing_permutation() {
        let pts = skewed_points();
        let grid = GridIndex::build(&pts, 1.0).unwrap();
        let profile = WorkloadProfile::compute(&grid);
        let mut ids: Vec<u32> = (0..pts.len() as u32).collect();
        profile.sort_by_workload(&mut ids);
        assert_eq!(ids.len(), pts.len());
        let mut sorted_ids = ids.clone();
        sorted_ids.sort_unstable();
        assert_eq!(sorted_ids, (0..pts.len() as u32).collect::<Vec<_>>());
        for pair in ids.windows(2) {
            assert!(profile.point_workload(pair[0]) >= profile.point_workload(pair[1]));
        }
    }

    #[test]
    fn sorted_dataset_is_cell_major_non_increasing() {
        let pts = skewed_points();
        let grid = GridIndex::build(&pts, 1.0).unwrap();
        let profile = WorkloadProfile::compute(&grid);
        let order = profile.sorted_dataset(&grid);
        assert_eq!(order.len(), pts.len());
        for pair in order.windows(2) {
            assert!(
                profile.point_workload(pair[0]) >= profile.point_workload(pair[1]),
                "D' must be non-increasing in workload"
            );
        }
        // Heaviest cluster's 8 points come first.
        assert!(order[..8].iter().all(|&pid| pid < 8));
    }

    #[test]
    fn cell_summary_is_sorted_and_complete() {
        let pts = skewed_points();
        let grid = GridIndex::build(&pts, 1.0).unwrap();
        let profile = WorkloadProfile::compute(&grid);
        let summary = profile.cell_summary(&grid);
        assert_eq!(summary.len(), grid.num_cells());
        let total_points: u32 = summary.iter().map(|c| c.points).sum();
        assert_eq!(total_points as usize, pts.len());
        for pair in summary.windows(2) {
            assert!(pair[0].candidates >= pair[1].candidates);
        }
    }

    #[test]
    fn orderings_are_deterministic_under_repetition_and_permutation() {
        // Regression for tie-break fragility: many cells share a workload on
        // lattice-like data, so any reliance on sort incidentals (rather
        // than the explicit id tie-break) would reorder ties between runs or
        // under permuted input.
        let mut pts = Vec::new();
        for x in 0..6 {
            for y in 0..6 {
                pts.push([x as f32 + 0.5, y as f32 + 0.5]);
            }
        }
        let grid = GridIndex::build(&pts, 1.0).unwrap();
        let profile = WorkloadProfile::compute(&grid);

        let cell_order = profile.cell_order();
        let dataset_order = profile.sorted_dataset(&grid);
        let summary = profile.cell_summary(&grid);
        for _ in 0..5 {
            assert_eq!(profile.cell_order(), cell_order, "cell order drifted");
            assert_eq!(profile.sorted_dataset(&grid), dataset_order);
            assert_eq!(profile.cell_summary(&grid), summary);
        }
        // Equal-workload runs must be in ascending cell index.
        for pair in cell_order.windows(2) {
            let (wa, wb) = (
                profile.cell_workload(pair[0] as usize),
                profile.cell_workload(pair[1] as usize),
            );
            assert!(wa > wb || (wa == wb && pair[0] < pair[1]));
        }

        // Point sort: permuting the input ids must not change the result.
        let mut ids: Vec<u32> = (0..pts.len() as u32).collect();
        profile.sort_by_workload(&mut ids);
        let mut permuted: Vec<u32> = (0..pts.len() as u32).rev().collect();
        profile.sort_by_workload(&mut permuted);
        assert_eq!(ids, permuted, "sort must not depend on input order");
        let mut rotated: Vec<u32> = (0..pts.len() as u32).collect();
        rotated.rotate_left(7);
        profile.sort_by_workload(&mut rotated);
        assert_eq!(ids, rotated);
    }

    #[test]
    fn expand_cell_order_matches_sorted_dataset() {
        let pts = skewed_points();
        let grid = GridIndex::build(&pts, 1.0).unwrap();
        let profile = WorkloadProfile::compute(&grid);
        assert_eq!(
            expand_cell_order(&grid, &profile.cell_order()),
            profile.sorted_dataset(&grid)
        );
    }

    #[test]
    fn uniform_data_has_uniform_workloads() {
        // A full lattice: every interior point sees the same window count.
        let mut pts = Vec::new();
        for x in 0..6 {
            for y in 0..6 {
                pts.push([x as f32 + 0.5, y as f32 + 0.5]);
            }
        }
        let grid = GridIndex::build(&pts, 1.0).unwrap();
        let profile = WorkloadProfile::compute(&grid);
        // Interior cell (2,2) sees 9 candidates; corner (0,0) sees 4.
        let interior = grid.find_cell(grid.shape().linear_id(&[2, 2])).unwrap();
        let corner = grid.find_cell(grid.shape().linear_id(&[0, 0])).unwrap();
        assert_eq!(profile.cell_workload(interior), 9);
        assert_eq!(profile.cell_workload(corner), 4);
    }
}
