//! Cell access patterns: which neighbor cells each query point probes.
//!
//! Three patterns are implemented (see [`crate::AccessPattern`]):
//!
//! - **FullWindow** (`GPUCALCGLOBAL`): probe all `3^n` window cells; every
//!   in-ε pair is found twice, once from each endpoint.
//! - **UNICOMP**: the unidirectional pattern of Gowanlock & Karsin. A cell
//!   `C` probes the neighbor at offset `δ ≠ 0` iff `C[d*]` is odd, where
//!   `d*` is the highest dimension with `δ[d*] ≠ 0`. Since the two cells of
//!   an adjacent pair differ by exactly 1 in dimension `d*`, exactly one of
//!   them has an odd `d*` coordinate — every adjacent-cell pair is probed
//!   exactly once, from the odd side. In 2-D this is precisely Algorithm 2
//!   of the paper: the "green arrows" (`x` odd → row neighbors) and "red
//!   arrows" (`y` odd → the six cells of the rows above and below). Cells
//!   probe between 0 and `3^n - 1` neighbors, which is the imbalance
//!   LID-UNICOMP removes.
//! - **LID-UNICOMP** (§III-B): probe exactly the window cells whose linear
//!   id is larger than the origin's. Also once per adjacent pair, but every
//!   interior cell probes the same number (`(3^n - 1) / 2`) of neighbors.
//!
//! For the unidirectional patterns, intra-cell pairs are handled by
//! comparing each point only against later points of its own cell
//! ([`ProbeRelation::OwnCellForward`]) and emitting both orientations.

use epsgrid::{GridIndex, LinearCellId, NeighborWindow};

use crate::config::AccessPattern;

/// How the points of a probed cell relate to the query point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeRelation {
    /// Compare against every point of the cell; skip the query point itself;
    /// emit only the `(query, candidate)` orientation. Used by FullWindow.
    AllBidirectional,
    /// Compare against every point of the cell; emit both orientations
    /// (the cell is distinct from the query's home cell).
    AllSymmetric,
    /// The query's own cell under a unidirectional pattern: compare only
    /// against points stored *after* the query point within the cell; emit
    /// both orientations.
    OwnCellForward,
}

/// One neighbor-cell probe: the linear id the kernel binary-searches for,
/// and how to treat the cell's points if it exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellProbe {
    /// Linear id of the probed cell (may be absent from the index).
    pub linear_id: LinearCellId,
    /// Relation of the probed cell's points to the query point.
    pub relation: ProbeRelation,
}

/// Produces the probe list for a query point living in non-empty cell
/// `origin_idx`, under `pattern`. Probes are emitted in ascending linear-id
/// order of the window walk; absent cells still appear (they cost a lookup
/// in the kernel, as in the real implementation).
pub fn probes_for<const N: usize>(
    pattern: AccessPattern,
    grid: &GridIndex<N>,
    origin_idx: usize,
) -> Vec<CellProbe> {
    let shape = grid.shape();
    let origin_coords = grid.cell_coords(origin_idx);
    let origin_id = grid.cells()[origin_idx].linear_id;
    let window = NeighborWindow::around(shape, &origin_coords);
    let mut probes = Vec::with_capacity(window.len());
    for (coords, linear_id) in window.iter(shape) {
        if linear_id == origin_id {
            let relation = match pattern {
                AccessPattern::FullWindow => ProbeRelation::AllBidirectional,
                AccessPattern::Unicomp | AccessPattern::LidUnicomp => ProbeRelation::OwnCellForward,
            };
            probes.push(CellProbe {
                linear_id,
                relation,
            });
            continue;
        }
        let include = match pattern {
            AccessPattern::FullWindow => true,
            AccessPattern::LidUnicomp => linear_id > origin_id,
            AccessPattern::Unicomp => {
                // Highest dimension in which the neighbor differs decides
                // which parity rule applies; the origin probes iff its
                // coordinate in that dimension is odd.
                let mut d_star = None;
                for d in 0..N {
                    if coords[d] != origin_coords[d] {
                        d_star = Some(d);
                    }
                }
                let d_star = d_star.expect("non-origin window cell differs somewhere");
                origin_coords[d_star] % 2 == 1
            }
        };
        if include {
            let relation = if pattern == AccessPattern::FullWindow {
                ProbeRelation::AllBidirectional
            } else {
                ProbeRelation::AllSymmetric
            };
            probes.push(CellProbe {
                linear_id,
                relation,
            });
        }
    }
    probes
}

/// Number of *neighbor* (non-origin) cells a cell at `coords` would probe
/// under `pattern` on an unbounded grid — the numbers drawn in the paper's
/// Figures 2 and 5.
pub fn interior_probe_count<const N: usize>(pattern: AccessPattern, coords: &[u32; N]) -> usize {
    let total = 3usize.pow(N as u32) - 1;
    match pattern {
        AccessPattern::FullWindow => total,
        AccessPattern::LidUnicomp => total / 2,
        AccessPattern::Unicomp => {
            // Offsets δ ∈ {-1,0,1}^N \ {0} with coords[d*(δ)] odd.
            let mut count = 0;
            let mut offsets = vec![[0i32; N]];
            for d in 0..N {
                let mut next = Vec::with_capacity(offsets.len() * 3);
                for off in &offsets {
                    for v in [-1i32, 0, 1] {
                        let mut o = *off;
                        o[d] = v;
                        next.push(o);
                    }
                }
                offsets = next;
            }
            for off in offsets {
                if off == [0i32; N] {
                    continue;
                }
                let d_star = (0..N).rev().find(|&d| off[d] != 0).unwrap();
                if coords[d_star] % 2 == 1 {
                    count += 1;
                }
            }
            count
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epsgrid::Point;

    /// A dense 5×5 grid of points, one per unit cell.
    fn dense_grid_2d() -> (Vec<Point<2>>, GridIndex<2>) {
        let mut pts = Vec::new();
        for x in 0..5 {
            for y in 0..5 {
                pts.push([x as f32 + 0.5, y as f32 + 0.5]);
            }
        }
        let grid = GridIndex::build(&pts, 1.0).unwrap();
        (pts, grid)
    }

    fn find_cell_idx(grid: &GridIndex<2>, coords: [u32; 2]) -> usize {
        let id = grid.shape().linear_id(&coords);
        grid.find_cell(id).expect("dense grid: every cell exists")
    }

    #[test]
    fn full_window_probes_whole_window() {
        let (_, grid) = dense_grid_2d();
        let center = find_cell_idx(&grid, [2, 2]);
        let probes = probes_for(AccessPattern::FullWindow, &grid, center);
        assert_eq!(probes.len(), 9);
        assert_eq!(
            probes
                .iter()
                .filter(|p| p.relation == ProbeRelation::AllBidirectional)
                .count(),
            9
        );
    }

    #[test]
    fn lid_unicomp_probes_higher_ids_only() {
        let (_, grid) = dense_grid_2d();
        let center = find_cell_idx(&grid, [2, 2]);
        let own_id = grid.cells()[center].linear_id;
        let probes = probes_for(AccessPattern::LidUnicomp, &grid, center);
        // own cell + 4 higher-id neighbors (paper Figure 5: interior cells
        // compare to 4 neighbor cells in 2-D)
        assert_eq!(probes.len(), 5);
        let own: Vec<_> = probes
            .iter()
            .filter(|p| p.relation == ProbeRelation::OwnCellForward)
            .collect();
        assert_eq!(own.len(), 1);
        assert_eq!(own[0].linear_id, own_id);
        for p in &probes {
            if p.relation == ProbeRelation::AllSymmetric {
                assert!(p.linear_id > own_id);
            }
        }
    }

    #[test]
    fn unicomp_matches_figure_2_counts() {
        // Figure 2: neighbor counts depend on coordinate parity.
        // even/even → 0, odd/even → 2, even/odd → 6, odd/odd → 8.
        assert_eq!(interior_probe_count(AccessPattern::Unicomp, &[2u32, 2]), 0);
        assert_eq!(interior_probe_count(AccessPattern::Unicomp, &[1u32, 2]), 2);
        assert_eq!(interior_probe_count(AccessPattern::Unicomp, &[2u32, 1]), 6);
        assert_eq!(interior_probe_count(AccessPattern::Unicomp, &[1u32, 1]), 8);
    }

    #[test]
    fn lid_unicomp_interior_count_is_constant() {
        for coords in [[0u32, 0], [1, 2], [3, 3]] {
            assert_eq!(interior_probe_count(AccessPattern::LidUnicomp, &coords), 4);
        }
        assert_eq!(
            interior_probe_count::<3>(AccessPattern::LidUnicomp, &[1, 1, 1]),
            13
        );
    }

    /// Exhaustive pair-coverage check: on a dense grid, every unordered
    /// adjacent-cell pair must be probed exactly once by the unidirectional
    /// patterns and exactly twice by FullWindow.
    fn check_pair_coverage(pattern: AccessPattern, expected_per_pair: usize) {
        let (_, grid) = dense_grid_2d();
        let mut cover = std::collections::HashMap::new();
        for ci in 0..grid.num_cells() {
            let own_id = grid.cells()[ci].linear_id;
            for p in probes_for(pattern, &grid, ci) {
                if p.linear_id == own_id {
                    continue;
                }
                let key = (own_id.min(p.linear_id), own_id.max(p.linear_id));
                *cover.entry(key).or_insert(0usize) += 1;
            }
        }
        // Count adjacent pairs in a 5x5 grid.
        let mut expected_pairs = 0;
        for x1 in 0..5u32 {
            for y1 in 0..5u32 {
                for x2 in 0..5u32 {
                    for y2 in 0..5u32 {
                        let a = grid.shape().linear_id(&[x1, y1]);
                        let b = grid.shape().linear_id(&[x2, y2]);
                        if a < b && x1.abs_diff(x2) <= 1 && y1.abs_diff(y2) <= 1 {
                            expected_pairs += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(
            cover.len(),
            expected_pairs,
            "{pattern:?} must cover every adjacent pair"
        );
        for (pair, count) in cover {
            assert_eq!(
                count, expected_per_pair,
                "{pattern:?}: pair {pair:?} probed {count} times"
            );
        }
    }

    #[test]
    fn unicomp_covers_each_pair_once() {
        check_pair_coverage(AccessPattern::Unicomp, 1);
    }

    #[test]
    fn lid_unicomp_covers_each_pair_once() {
        check_pair_coverage(AccessPattern::LidUnicomp, 1);
    }

    #[test]
    fn full_window_covers_each_pair_twice() {
        check_pair_coverage(AccessPattern::FullWindow, 2);
    }

    #[test]
    fn unicomp_variance_exceeds_lid_unicomp_variance() {
        // The motivating claim of §III-B: LID-UNICOMP equalizes per-cell
        // probe counts where UNICOMP leaves them wildly uneven.
        let counts = |p: AccessPattern| -> Vec<usize> {
            (1..4u32)
                .flat_map(|x| (1..4u32).map(move |y| (x, y)))
                .map(|(x, y)| interior_probe_count(p, &[x, y]))
                .collect()
        };
        let spread = |v: &[usize]| v.iter().max().unwrap() - v.iter().min().unwrap();
        let uni = counts(AccessPattern::Unicomp);
        let lid = counts(AccessPattern::LidUnicomp);
        assert!(spread(&uni) > spread(&lid));
        assert_eq!(spread(&lid), 0);
    }
}
